package metrics

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// formatValue renders a sample value per the Prometheus text format.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// withLabel splices an extra label into a rendered label suffix.
func withLabel(key, name, value string) string {
	extra := name + `="` + escapeLabel(value) + `"`
	if key == "" {
		return "{" + extra + "}"
	}
	return key[:len(key)-1] + "," + extra + "}"
}

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4): # HELP and # TYPE lines per family,
// then one sample line per series; histograms expand into cumulative
// _bucket series plus _sum and _count. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		r.mu.Lock()
		order := append([]string(nil), f.order...)
		rows := make([]*series, len(order))
		for i, key := range order {
			rows[i] = f.byKey[key]
		}
		r.mu.Unlock()
		for _, s := range rows {
			if f.kind == KindHistogram {
				bounds, cumulative := s.hist.snapshotBuckets()
				for i, bound := range bounds {
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, withLabel(s.labels, "le", formatValue(bound)), cumulative[i])
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, withLabel(s.labels, "le", "+Inf"), cumulative[len(cumulative)-1])
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, s.labels, formatValue(s.hist.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, s.labels, s.hist.Count())
				continue
			}
			fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatValue(s.value()))
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// Handler returns an http.Handler serving the Prometheus text page —
// mount it at /metrics. A nil registry serves an empty page.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// HistogramSnapshot is the snapshot form of one histogram series.
type HistogramSnapshot struct {
	Bounds     []float64 `json:"bounds"`
	Cumulative []uint64  `json:"cumulative"` // aligned with Bounds, +Inf last
	Sum        float64   `json:"sum"`
	Count      uint64    `json:"count"`
}

// Snapshot returns every series' current value keyed by its full series
// name (family plus rendered labels). Scalar series map to float64;
// histograms map to HistogramSnapshot. A nil registry returns an empty
// map. Weakly consistent under concurrent writes.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	type row struct {
		name string
		s    *series
		kind Kind
	}
	var rows []row
	for _, n := range r.names {
		f := r.families[n]
		for _, key := range f.order {
			rows = append(rows, row{name: n + key, s: f.byKey[key], kind: f.kind})
		}
	}
	r.mu.Unlock()
	for _, rw := range rows {
		if rw.kind == KindHistogram {
			bounds, cumulative := rw.s.hist.snapshotBuckets()
			out[rw.name] = HistogramSnapshot{
				Bounds:     bounds,
				Cumulative: cumulative,
				Sum:        rw.s.hist.Sum(),
				Count:      rw.s.hist.Count(),
			}
			continue
		}
		out[rw.name] = rw.s.value()
	}
	return out
}

// PublishExpvar exposes the registry's snapshot under the given expvar
// name (on the standard expvar page, typically /debug/vars). Publishing
// the same name twice panics (an expvar property), so call it once per
// process; a nil registry publishes an always-empty map.
func (r *Registry) PublishExpvar(name string) {
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
