package stats

import (
	"math"
)

// Welford accumulates streaming mean and variance. The zero value is an
// empty accumulator ready to use.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of observations.
func (w Welford) Count() uint64 { return w.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (w Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 with fewer than two
// observations).
func (w Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w Welford) StdDev() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest observation (0 when empty).
func (w Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 when empty).
func (w Welford) Max() float64 { return w.max }

// Merge combines another accumulator into this one (parallel reduction),
// using Chan et al.'s pairwise update. Min/max merge directly.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n = n
}

// Ratio is a hit/total counter (e.g. miss ratio, rejection ratio).
type Ratio struct {
	Hits  uint64
	Total uint64
}

// Observe records one trial.
func (r *Ratio) Observe(hit bool) {
	r.Total++
	if hit {
		r.Hits++
	}
}

// Value returns Hits/Total, or 0 when no trials were recorded.
func (r *Ratio) Value() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Total)
}

// Summary is a replication summary: the mean of per-replication values
// with a normal-approximation 95% confidence half-width.
type Summary struct {
	Mean   float64
	Half95 float64
	N      int
}

// Summarize reduces per-replication observations to a Summary.
func Summarize(values []float64) Summary {
	var w Welford
	for _, v := range values {
		w.Add(v)
	}
	s := Summary{Mean: w.Mean(), N: len(values)}
	if len(values) > 1 {
		s.Half95 = 1.96 * w.StdDev() / math.Sqrt(float64(len(values)))
	}
	return s
}
