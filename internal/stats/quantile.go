package stats

import (
	"fmt"
	"math"
	"sort"
)

// Quantile is a streaming quantile estimator implementing the P² (P
// squared) algorithm of Jain & Chlamtac (1985): it tracks five markers
// whose positions are adjusted with piecewise-parabolic interpolation,
// estimating the p-quantile in O(1) space without storing observations.
//
// Estimates are exact until five observations arrive and approximate
// afterwards; accuracy is excellent for smooth distributions (the usual
// P² behavior). The zero value is not usable; construct with NewQuantile.
type Quantile struct {
	p       float64
	n       uint64
	heights [5]float64 // marker heights (q_i)
	pos     [5]float64 // actual marker positions (n_i)
	want    [5]float64 // desired marker positions (n'_i)
	incr    [5]float64 // desired position increments (dn'_i)
	initial []float64  // first observations until the estimator seeds
}

// NewQuantile returns an estimator for the p-quantile, 0 < p < 1.
func NewQuantile(p float64) *Quantile {
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("stats: quantile p must be in (0, 1), got %v", p))
	}
	return &Quantile{
		p:    p,
		want: [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5},
		incr: [5]float64{0, p / 2, p, (1 + p) / 2, 1},
	}
}

// Count returns the number of observations.
func (q *Quantile) Count() uint64 { return q.n }

// Add incorporates one observation.
func (q *Quantile) Add(x float64) {
	q.n++
	if len(q.initial) < 5 {
		q.initial = append(q.initial, x)
		if len(q.initial) == 5 {
			sort.Float64s(q.initial)
			for i := 0; i < 5; i++ {
				q.heights[i] = q.initial[i]
				q.pos[i] = float64(i + 1)
			}
		}
		return
	}

	// Find the cell k the observation falls into, adjusting extremes.
	var k int
	switch {
	case x < q.heights[0]:
		q.heights[0] = x
		k = 0
	case x >= q.heights[4]:
		q.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < q.heights[k+1] {
				break
			}
		}
	}

	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := 0; i < 5; i++ {
		q.want[i] += q.incr[i]
	}

	// Adjust interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := q.want[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := q.parabolic(i, sign)
			if q.heights[i-1] < h && h < q.heights[i+1] {
				q.heights[i] = h
			} else {
				q.heights[i] = q.linear(i, sign)
			}
			q.pos[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction.
func (q *Quantile) parabolic(i int, d float64) float64 {
	return q.heights[i] + d/(q.pos[i+1]-q.pos[i-1])*
		((q.pos[i]-q.pos[i-1]+d)*(q.heights[i+1]-q.heights[i])/(q.pos[i+1]-q.pos[i])+
			(q.pos[i+1]-q.pos[i]-d)*(q.heights[i]-q.heights[i-1])/(q.pos[i]-q.pos[i-1]))
}

// linear is the fallback height prediction.
func (q *Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return q.heights[i] + d*(q.heights[j]-q.heights[i])/(q.pos[j]-q.pos[i])
}

// Value returns the current quantile estimate. With fewer than five
// observations it returns the exact sample quantile (nearest rank); with
// none it returns 0.
func (q *Quantile) Value() float64 {
	if q.n == 0 {
		return 0
	}
	if len(q.initial) < 5 {
		sorted := append([]float64(nil), q.initial...)
		sort.Float64s(sorted)
		idx := int(math.Ceil(q.p*float64(len(sorted)))) - 1
		if idx < 0 {
			idx = 0
		}
		return sorted[idx]
	}
	return q.heights[2]
}
