package stats

import (
	"math"
	"sort"
	"testing"

	"feasregion/internal/dist"
)

// exactQuantile computes the nearest-rank sample quantile.
func exactQuantile(values []float64, p float64) float64 {
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

func TestQuantileExactBelowFiveObservations(t *testing.T) {
	q := NewQuantile(0.5)
	for _, x := range []float64{5, 1, 3} {
		q.Add(x)
	}
	if got := q.Value(); got != 3 {
		t.Fatalf("median of {5,1,3} = %v, want 3", got)
	}
	if q.Count() != 3 {
		t.Fatalf("Count = %d", q.Count())
	}
}

func TestQuantileEmpty(t *testing.T) {
	q := NewQuantile(0.9)
	if q.Value() != 0 {
		t.Fatal("empty estimator must return 0")
	}
}

func TestQuantileUniform(t *testing.T) {
	for _, p := range []float64{0.5, 0.9, 0.99} {
		q := NewQuantile(p)
		g := dist.NewRNG(1)
		var all []float64
		for i := 0; i < 50_000; i++ {
			x := g.Float64() * 100
			q.Add(x)
			all = append(all, x)
		}
		got := q.Value()
		want := exactQuantile(all, p)
		if math.Abs(got-want) > 1.5 {
			t.Errorf("p=%v: P² estimate %.3f, exact %.3f", p, got, want)
		}
	}
}

func TestQuantileExponential(t *testing.T) {
	q := NewQuantile(0.95)
	g := dist.NewRNG(2)
	var all []float64
	for i := 0; i < 50_000; i++ {
		x := g.ExpFloat64() * 10
		q.Add(x)
		all = append(all, x)
	}
	got, want := q.Value(), exactQuantile(all, 0.95)
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("exp p95: estimate %.3f, exact %.3f", got, want)
	}
}

func TestQuantileSortedInput(t *testing.T) {
	// Monotone input is a classic P² stress case.
	q := NewQuantile(0.5)
	for i := 1; i <= 10_001; i++ {
		q.Add(float64(i))
	}
	if got := q.Value(); math.Abs(got-5001) > 250 {
		t.Errorf("median of 1..10001 estimated %v, want ≈5001", got)
	}
}

func TestQuantileConstantInput(t *testing.T) {
	q := NewQuantile(0.9)
	for i := 0; i < 1000; i++ {
		q.Add(7)
	}
	if got := q.Value(); got != 7 {
		t.Fatalf("constant stream quantile %v, want 7", got)
	}
}

func TestQuantileOrderingAcrossPs(t *testing.T) {
	// p50 ≤ p90 ≤ p99 on the same stream.
	q50, q90, q99 := NewQuantile(0.5), NewQuantile(0.9), NewQuantile(0.99)
	g := dist.NewRNG(3)
	for i := 0; i < 20_000; i++ {
		x := g.ExpFloat64()
		q50.Add(x)
		q90.Add(x)
		q99.Add(x)
	}
	if !(q50.Value() <= q90.Value() && q90.Value() <= q99.Value()) {
		t.Fatalf("quantiles out of order: %v %v %v", q50.Value(), q90.Value(), q99.Value())
	}
}

func TestQuantileInvalidP(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewQuantile(%v) should panic", p)
				}
			}()
			NewQuantile(p)
		}()
	}
}
