package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Fatalf("Count = %d, want 8", w.Count())
	}
	if got := w.Mean(); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if got := w.Var(); math.Abs(got-32.0/7) > 1e-12 {
		t.Fatalf("Var = %v, want %v", got, 32.0/7)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("min/max = %v/%v, want 2/9", w.Min(), w.Max())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.StdDev() != 0 || w.Count() != 0 {
		t.Fatal("empty accumulator must report zeros")
	}
}

func TestWelfordSingleObservation(t *testing.T) {
	var w Welford
	w.Add(3.5)
	if w.Var() != 0 {
		t.Fatal("variance with one observation must be 0")
	}
	if w.Min() != 3.5 || w.Max() != 3.5 {
		t.Fatal("min/max with one observation")
	}
}

func TestWelfordMergeMatchesSequentialQuick(t *testing.T) {
	f := func(a, b []float64) bool {
		for _, x := range append(append([]float64{}, a...), b...) {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip pathological inputs
			}
		}
		var wa, wb, seq Welford
		for _, x := range a {
			wa.Add(x)
			seq.Add(x)
		}
		for _, x := range b {
			wb.Add(x)
			seq.Add(x)
		}
		wa.Merge(wb)
		if wa.Count() != seq.Count() {
			return false
		}
		if seq.Count() == 0 {
			return true
		}
		scale := 1 + math.Abs(seq.Mean())
		if math.Abs(wa.Mean()-seq.Mean()) > 1e-9*scale {
			return false
		}
		vscale := 1 + seq.Var()
		return math.Abs(wa.Var()-seq.Var()) <= 1e-6*vscale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWelfordMergeIntoEmpty(t *testing.T) {
	var a, b Welford
	b.Add(1)
	b.Add(3)
	a.Merge(b)
	if a.Mean() != 2 || a.Count() != 2 {
		t.Fatalf("merge into empty: mean %v count %d", a.Mean(), a.Count())
	}
	a.Merge(Welford{}) // merging empty is a no-op
	if a.Count() != 2 {
		t.Fatal("merging empty changed count")
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 {
		t.Fatal("empty ratio must be 0")
	}
	r.Observe(true)
	r.Observe(false)
	r.Observe(false)
	r.Observe(true)
	if got := r.Value(); got != 0.5 {
		t.Fatalf("ratio %v, want 0.5", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{10, 12, 8, 10})
	if s.Mean != 10 || s.N != 4 {
		t.Fatalf("summary %+v", s)
	}
	if s.Half95 <= 0 {
		t.Fatal("CI half-width must be positive with variance")
	}
	one := Summarize([]float64{5})
	if one.Half95 != 0 {
		t.Fatal("single replication has no CI")
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{Title: "demo", Header: []string{"load", "util"}}
	tb.AddRow("0.60", "0.58")
	tb.AddFloatRow(1.0, 0.82345)
	out := tb.Render()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "load") {
		t.Fatalf("render missing title/header:\n%s", out)
	}
	if !strings.Contains(out, "0.8235") {
		t.Fatalf("render missing float row:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("render has %d lines:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{Header: []string{"a", "b"}}
	tb.AddRow("1", `va"l,ue`)
	csv := tb.CSV()
	want := "a,b\n1,\"va\"\"l,ue\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := Table{Title: "demo", Header: []string{"a", "b"}}
	tb.AddRow("1", "x|y")
	md := tb.Markdown()
	if !strings.Contains(md, "### demo") {
		t.Fatalf("markdown missing title:\n%s", md)
	}
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "|---|---|") {
		t.Fatalf("markdown header wrong:\n%s", md)
	}
	if !strings.Contains(md, `x\|y`) {
		t.Fatalf("pipe not escaped:\n%s", md)
	}
}

func TestTableMarkdownRaggedRows(t *testing.T) {
	tb := Table{Header: []string{"a"}}
	tb.AddRow("1", "2", "3")
	md := tb.Markdown()
	if !strings.Contains(md, "| 1 | 2 | 3 |") {
		t.Fatalf("ragged row not padded:\n%s", md)
	}
}
