package stats

import (
	"math"
	"testing"
)

// FuzzQuantile: the estimator never panics and, for well-behaved input,
// stays within the observed range.
func FuzzQuantile(f *testing.F) {
	f.Add(0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0)
	f.Add(0.99, -1.0, -2.0, 0.0, 7.5, 100.0, 3.3)
	f.Fuzz(func(t *testing.T, p, a, b, c, d, e, g float64) {
		if p <= 0 || p >= 1 || math.IsNaN(p) {
			return
		}
		values := []float64{a, b, c, d, e, g}
		min, max := math.Inf(1), math.Inf(-1)
		q := NewQuantile(p)
		for _, v := range values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return
			}
			q.Add(v)
			min = math.Min(min, v)
			max = math.Max(max, v)
		}
		got := q.Value()
		if got < min-1e-9 || got > max+1e-9 {
			t.Fatalf("quantile %v outside sample range [%v, %v]", got, min, max)
		}
	})
}
