package stats

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve for Chart.
type Series struct {
	Name string
	Y    []float64
}

// Chart renders named series over a shared x-axis as an ASCII scatter
// chart (one symbol per series, overlaps shown by the later series).
// It is how cmd/experiments -plot draws the paper's figures in a
// terminal. Width and height are the plot area size in characters.
func Chart(title string, x []float64, series []Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 5 {
		height = 5
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	if len(x) == 0 || len(series) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}

	xmin, xmax := x[0], x[0]
	for _, v := range x {
		xmin = math.Min(xmin, v)
		xmax = math.Max(xmax, v)
	}
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Y {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			ymin = math.Min(ymin, v)
			ymax = math.Max(ymax, v)
		}
	}
	if math.IsInf(ymin, 1) {
		ymin, ymax = 0, 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	// Pad the y-range slightly so extremes stay visible.
	pad := (ymax - ymin) * 0.05
	ymin -= pad
	ymax += pad

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	symbols := []byte{'*', 'o', '+', 'x', '#', '@', '%', '~'}
	for si, s := range series {
		sym := symbols[si%len(symbols)]
		for i, v := range s.Y {
			if i >= len(x) || math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			col := int((x[i] - xmin) / (xmax - xmin) * float64(width-1))
			row := int((v - ymin) / (ymax - ymin) * float64(height-1))
			if col < 0 || col >= width || row < 0 || row >= height {
				continue
			}
			grid[height-1-row][col] = sym
		}
	}

	for r, rowBytes := range grid {
		yLabel := ymax - (ymax-ymin)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%8.3f |%s|\n", yLabel, string(rowBytes))
	}
	fmt.Fprintf(&b, "%8s +%s+\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%8s  %-*.4g%*.4g\n", "", width/2, xmin, width-width/2, xmax)
	legend := make([]string, len(series))
	for si, s := range series {
		legend[si] = fmt.Sprintf("%c %s", symbols[si%len(symbols)], s.Name)
	}
	b.WriteString("          " + strings.Join(legend, "   ") + "\n")
	return b.String()
}
