// Package stats provides the small statistical toolkit the experiment
// harness needs: streaming moments (Welford), streaming quantiles (P²),
// min/max tallies, replication summaries with confidence intervals, and
// plain-text / CSV / markdown table rendering for the paper's figures.
package stats
