package stats

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: the rows/series a paper figure
// or table reports.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddFloatRow appends a row of floats rendered with %.4g.
func (t *Table) AddFloatRow(values ...float64) {
	cells := make([]string, len(values))
	for i, v := range values {
		cells[i] = fmt.Sprintf("%.4g", v)
	}
	t.Rows = append(t.Rows, cells)
}

// Render returns a column-aligned plain-text rendering.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		for i, w := range widths {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat("-", w))
		}
		b.WriteByte('\n')
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV returns a comma-separated rendering (header first). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown returns a GitHub-flavored markdown rendering of the table
// (used by cmd/experiments -md to emit a results document).
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("### " + t.Title + "\n\n")
	}
	cols := len(t.Header)
	for _, row := range t.Rows {
		if len(row) > cols {
			cols = len(row)
		}
	}
	if cols == 0 {
		return b.String()
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = strings.ReplaceAll(cells[i], "|", "\\|")
			}
			b.WriteString(" " + c + " |")
		}
		b.WriteString("\n")
	}
	header := t.Header
	if len(header) == 0 {
		header = make([]string, cols)
	}
	writeRow(header)
	b.WriteString("|")
	for i := 0; i < cols; i++ {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
