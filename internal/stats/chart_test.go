package stats

import (
	"strings"
	"testing"
)

func TestChartBasics(t *testing.T) {
	out := Chart("demo", []float64{0, 1, 2}, []Series{
		{Name: "a", Y: []float64{0, 1, 2}},
		{Name: "b", Y: []float64{2, 1, 0}},
	}, 30, 8)
	if !strings.Contains(out, "demo") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "* a") || !strings.Contains(out, "o b") {
		t.Fatalf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("missing points:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 8 rows + axis + labels + legend
	if len(lines) != 12 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestChartEmpty(t *testing.T) {
	out := Chart("", nil, nil, 30, 8)
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty chart output %q", out)
	}
}

func TestChartConstantSeries(t *testing.T) {
	out := Chart("", []float64{1, 2}, []Series{{Name: "c", Y: []float64{5, 5}}}, 20, 6)
	if !strings.Contains(out, "*") {
		t.Fatalf("constant series not plotted:\n%s", out)
	}
}

func TestChartSkipsNonFinite(t *testing.T) {
	inf := 1.0
	for i := 0; i < 400; i++ {
		inf *= 10
	}
	out := Chart("", []float64{0, 1, 2}, []Series{{Name: "a", Y: []float64{1, inf, 2}}}, 20, 6)
	if strings.Count(out, "*") != 3 { // two points + legend symbol
		t.Fatalf("non-finite point not skipped:\n%s", out)
	}
}
