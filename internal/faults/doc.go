// Package faults is a deterministic, seedable fault-injection layer for
// the pipeline simulation. The feasible-region guarantee rests on two
// platform assumptions the clean-room simulation never violates: that
// admitted tasks consume no more than their declared per-stage demands
// (the C_ij of Eq. 13/15), and that every stage keeps executing. This
// package breaks both, on a reproducible schedule, so the overrun guard
// and the self-healing machinery can be exercised and their absence
// demonstrated:
//
//   - demand overruns: a deterministic subset of tasks ("liars") executes
//     a configurable factor longer than declared at every stage,
//     optionally restricted to a caller-defined ID subset (LiarFilter)
//     so lying can be correlated with a workload class;
//   - stage slowdowns: windows during which a stage executes all work a
//     factor slower (a degraded replica, a noisy neighbor);
//   - stage stalls and crash-and-restart: windows during which a stage
//     dispatches nothing, optionally losing in-progress segment work on
//     restart;
//   - lost idle callbacks: stage-idle notifications that never reach the
//     admission controller (a dropped message), starving the idle reset;
//   - clock skew: a drifting wall clock for the online controller.
//
// Faults enter through injection points (sched.Stage.SetExecModel,
// Pause/Resume, and the pipeline's idle hook) rather than forks of the
// hot path; with no injector attached the system runs the untouched
// code.
package faults
