package faults

import (
	"math"
	"testing"
	"time"

	"feasregion/internal/des"
	"feasregion/internal/sched"
	"feasregion/internal/task"
)

// TestScheduleDeterminism checks the same (config, seed) yields the same
// windows and liar set, and a different seed yields a different one.
func TestScheduleDeterminism(t *testing.T) {
	cfg := Config{Stages: 3, Horizon: 1000, LiarFraction: 0.3, LiarFactor: 2,
		Stalls: 4, StallLen: 5, Slowdowns: 4, SlowdownLen: 10, SlowdownFactor: 3}
	a, b := New(cfg, 42), New(cfg, 42)
	as, aw := a.Windows()
	bs, bw := b.Windows()
	for i := range as {
		if as[i] != bs[i] {
			t.Fatalf("stall window %d differs across identical seeds: %+v vs %+v", i, as[i], bs[i])
		}
	}
	for i := range aw {
		if aw[i] != bw[i] {
			t.Fatalf("slow window %d differs across identical seeds: %+v vs %+v", i, aw[i], bw[i])
		}
	}
	liarsMatch, liarsDiffer := true, false
	other := New(cfg, 43)
	for id := task.ID(0); id < 1000; id++ {
		if a.Liar(id) != b.Liar(id) {
			liarsMatch = false
		}
		if a.Liar(id) != other.Liar(id) {
			liarsDiffer = true
		}
	}
	if !liarsMatch {
		t.Error("liar set differs across identical seeds")
	}
	if !liarsDiffer {
		t.Error("liar set identical across different seeds")
	}
}

// TestLiarFraction checks the hash-based liar selection hits the
// configured fraction to within sampling error.
func TestLiarFraction(t *testing.T) {
	in := New(Config{Stages: 1, LiarFraction: 0.25, LiarFactor: 2}, 7)
	n, liars := 200_000, 0
	for id := 0; id < n; id++ {
		if in.Liar(task.ID(id)) {
			liars++
		}
	}
	got := float64(liars) / float64(n)
	if math.Abs(got-0.25) > 0.01 {
		t.Errorf("liar fraction = %v, want ≈0.25", got)
	}
}

// TestAttachInflatesLiars runs two tasks through a one-stage pipeline
// and checks only the liar executes longer than declared.
func TestAttachInflatesLiars(t *testing.T) {
	cfg := Config{Stages: 1, LiarFraction: 0.5, LiarFactor: 3}
	in := New(cfg, 1)
	// Find one liar and one truthful ID.
	liar, honest := task.ID(-1), task.ID(-1)
	for id := task.ID(0); liar < 0 || honest < 0; id++ {
		if in.Liar(id) {
			if liar < 0 {
				liar = id
			}
		} else if honest < 0 {
			honest = id
		}
	}
	sim := des.New()
	st := sched.New(sim, "s")
	in.Attach(sim, []*sched.Stage{st})
	durations := map[task.ID]des.Time{}
	submit := func(id task.ID, at float64) {
		sim.At(at, func() {
			start := sim.Now()
			st.Submit(id, 1, task.NewSubtask(2), func(done des.Time) { durations[id] = done - start })
		})
	}
	submit(honest, 0)
	submit(liar, 10)
	sim.Run()
	if durations[honest] != 2 {
		t.Errorf("truthful task ran %v, want 2", durations[honest])
	}
	if durations[liar] != 6 {
		t.Errorf("liar ran %v, want 6 (3x inflation)", durations[liar])
	}
	if in.Stats().InflatedJobs != 1 {
		t.Errorf("inflated jobs = %d, want 1", in.Stats().InflatedJobs)
	}
}

// TestStallWindowBlocksStage schedules one explicit stall and checks the
// stage stops dispatching for exactly the window.
func TestStallWindowBlocksStage(t *testing.T) {
	cfg := Config{Stages: 1, Horizon: 100, Stalls: 1, StallLen: 5}
	in := New(cfg, 3)
	stalls, _ := in.Windows()
	w := stalls[0]
	sim := des.New()
	st := sched.New(sim, "s")
	in.Attach(sim, []*sched.Stage{st})
	// A long job spanning the stall: completion slips by the stall length.
	var done des.Time
	sim.At(w.Start-1, func() {
		st.Submit(1, 1, task.NewSubtask(3), func(now des.Time) { done = now })
	})
	sim.Run()
	want := w.Start - 1 + 3 + w.Duration
	if math.Abs(done-want) > 1e-9 {
		t.Errorf("completion at %v, want %v (stall-delayed)", done, want)
	}
	s := in.Stats()
	if s.StallsFired != 1 || s.Restarts != 1 {
		t.Errorf("stall stats = %+v", s)
	}
}

// TestIdleLossDeterminism checks idle drops reproduce for a fixed seed.
func TestIdleLossDeterminism(t *testing.T) {
	run := func() []bool {
		in := New(Config{Stages: 1, IdleLossProb: 0.5}, 9)
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, in.DropIdle(0, 0))
		}
		return out
	}
	a, b := run(), run()
	dropped := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("idle-loss draw %d differs across identical seeds", i)
		}
		if a[i] {
			dropped++
		}
	}
	if dropped == 0 || dropped == len(a) {
		t.Errorf("idle-loss draws degenerate: %d/%d dropped", dropped, len(a))
	}
}

// TestSkewedClock checks the sawtooth drift steps backwards at least
// once over a full period and stays within amplitude of the base clock.
func TestSkewedClock(t *testing.T) {
	base := time.Unix(1_000_000, 0)
	clock := SkewedClock(func() time.Time { return base }, 100*time.Millisecond, time.Second)
	var prev time.Time
	sawBackstep := false
	for i := 0; i <= 200; i++ {
		now := clock()
		if truth := base; now.Sub(truth) > 110*time.Millisecond || truth.Sub(now) > 110*time.Millisecond {
			t.Fatalf("skew %v exceeds amplitude", now.Sub(truth))
		}
		if i > 0 && now.Before(prev) {
			sawBackstep = true
		}
		prev = now
		base = base.Add(10 * time.Millisecond)
	}
	if !sawBackstep {
		t.Error("sawtooth never stepped backwards over two periods")
	}
}
