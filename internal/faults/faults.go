package faults

import (
	"fmt"
	"math"
	"time"

	"feasregion/internal/des"
	"feasregion/internal/dist"
	"feasregion/internal/sched"
	"feasregion/internal/task"
)

// StallWindow stalls one stage for [Start, Start+Duration); with
// DropProgress the restart loses in-progress segment work (crash).
type StallWindow struct {
	Stage        int
	Start        float64
	Duration     float64
	DropProgress bool
}

// SlowWindow multiplies the execution time of work submitted to the
// stage during [Start, Start+Duration) by Factor (> 1 is slower).
type SlowWindow struct {
	Stage    int
	Start    float64
	Duration float64
	Factor   float64
}

// Config parameterizes a randomized fault schedule. Zero values disable
// the corresponding fault class.
type Config struct {
	// Stages is the pipeline length the schedule spans. Required.
	Stages int
	// Horizon bounds the window [0, Horizon) in which randomized fault
	// windows are placed. Required when Stalls or Slowdowns is non-zero.
	Horizon float64

	// LiarFraction is the fraction of tasks that underdeclared their
	// demand: they execute LiarFactor times longer than declared at
	// every stage.
	LiarFraction float64
	// LiarFactor is the execution inflation for liars (must be ≥ 1 when
	// LiarFraction > 0).
	LiarFactor float64
	// LiarFilter, when non-nil, restricts lying to tasks for which it
	// returns true (LiarFraction then applies within that subset). Use
	// it to correlate underdeclared demand with a property the caller
	// controls — e.g. a partition of the task-ID space carrying one
	// workload class, so per-class estimators have something to find.
	LiarFilter func(id task.ID) bool

	// Stalls places this many stall windows of StallLen each, uniformly
	// over stages and time. CrashRestart makes each restart drop
	// in-progress segment work.
	Stalls       int
	StallLen     float64
	CrashRestart bool

	// Slowdowns places this many slowdown windows of SlowdownLen each,
	// scaling execution by SlowdownFactor, uniformly over stages & time.
	Slowdowns      int
	SlowdownLen    float64
	SlowdownFactor float64

	// IdleLossProb is the probability that any individual stage-idle
	// callback is dropped before reaching the admission controller.
	IdleLossProb float64

	// StallWindows and SlowWindows append explicitly placed windows to
	// the randomized schedule — for experiments that need the same
	// deterministic fault at a known instant across runs (e.g. the
	// stage-health feedback demonstration).
	StallWindows []StallWindow
	SlowWindows  []SlowWindow
}

func (c Config) validate() {
	if c.Stages <= 0 {
		panic(fmt.Sprintf("faults: need at least one stage, got %d", c.Stages))
	}
	if (c.Stalls > 0 || c.Slowdowns > 0) && c.Horizon <= 0 {
		panic("faults: randomized windows need a positive horizon")
	}
	if c.LiarFraction < 0 || c.LiarFraction > 1 {
		panic(fmt.Sprintf("faults: liar fraction %v outside [0, 1]", c.LiarFraction))
	}
	if c.LiarFraction > 0 && c.LiarFactor < 1 {
		panic(fmt.Sprintf("faults: liar factor %v must be ≥ 1", c.LiarFactor))
	}
	if c.Slowdowns > 0 && c.SlowdownFactor <= 0 {
		panic(fmt.Sprintf("faults: slowdown factor %v must be positive", c.SlowdownFactor))
	}
	if c.IdleLossProb < 0 || c.IdleLossProb > 1 {
		panic(fmt.Sprintf("faults: idle-loss probability %v outside [0, 1]", c.IdleLossProb))
	}
	for _, w := range c.StallWindows {
		if w.Stage < 0 || w.Stage >= c.Stages || w.Duration < 0 {
			panic(fmt.Sprintf("faults: invalid explicit stall window %+v", w))
		}
	}
	for _, w := range c.SlowWindows {
		if w.Stage < 0 || w.Stage >= c.Stages || w.Duration < 0 || w.Factor <= 0 {
			panic(fmt.Sprintf("faults: invalid explicit slowdown window %+v", w))
		}
	}
}

// Stats counts injected faults.
type Stats struct {
	// InflatedJobs counts job submissions whose execution was inflated
	// (liar or slowdown window).
	InflatedJobs uint64
	// StallsFired / Restarts count stall-window transitions.
	StallsFired uint64
	Restarts    uint64
	// ProgressDropped counts jobs that lost segment progress to a crash.
	ProgressDropped uint64
	// IdleDropped counts stage-idle callbacks that were swallowed.
	IdleDropped uint64
}

// Injector realizes one deterministic fault schedule: the same (Config,
// seed) pair always yields the same windows, the same liars, and — in a
// deterministic simulation — the same idle-callback losses.
type Injector struct {
	cfg    Config
	seed   int64
	rng    *dist.RNG // idle-loss draws, consumed in simulation event order
	stalls []StallWindow
	slows  []SlowWindow
	sim    *des.Simulator
	stats  Stats
}

// New builds the schedule. Window placement draws from a dist.RNG seeded
// with seed; liar selection is a stateless hash of (seed, task ID) so it
// is independent of arrival order.
func New(cfg Config, seed int64) *Injector {
	cfg.validate()
	rng := dist.NewRNG(seed)
	in := &Injector{cfg: cfg, seed: seed, rng: rng}
	for i := 0; i < cfg.Stalls; i++ {
		in.stalls = append(in.stalls, StallWindow{
			Stage:        rng.Intn(cfg.Stages),
			Start:        rng.Float64() * cfg.Horizon,
			Duration:     cfg.StallLen,
			DropProgress: cfg.CrashRestart,
		})
	}
	for i := 0; i < cfg.Slowdowns; i++ {
		in.slows = append(in.slows, SlowWindow{
			Stage:    rng.Intn(cfg.Stages),
			Start:    rng.Float64() * cfg.Horizon,
			Duration: cfg.SlowdownLen,
			Factor:   cfg.SlowdownFactor,
		})
	}
	in.stalls = append(in.stalls, cfg.StallWindows...)
	in.slows = append(in.slows, cfg.SlowWindows...)
	return in
}

// Windows returns the schedule's stall and slowdown windows (for
// inspection and assertions).
func (in *Injector) Windows() ([]StallWindow, []SlowWindow) {
	return append([]StallWindow(nil), in.stalls...), append([]SlowWindow(nil), in.slows...)
}

// Stats returns a snapshot of the injection counters.
func (in *Injector) Stats() Stats { return in.stats }

// Liar reports whether the task underdeclared its demand. The decision
// is a stateless hash of (seed, id): stable across stages, replications,
// and arrival orders, so tests can partition completed tasks into
// truthful and lying after the fact.
func (in *Injector) Liar(id task.ID) bool {
	if in.cfg.LiarFraction <= 0 {
		return false
	}
	if in.cfg.LiarFilter != nil && !in.cfg.LiarFilter(id) {
		return false
	}
	return uniformHash(uint64(in.seed), uint64(id)) < in.cfg.LiarFraction
}

// uniformHash maps (seed, id) to [0, 1) via splitmix64 finalization.
func uniformHash(seed, id uint64) float64 {
	x := seed ^ (id * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// execFactor returns the combined execution inflation for a job of the
// task submitted to the stage at the given time.
func (in *Injector) execFactor(stage int, id task.ID, now float64) float64 {
	f := 1.0
	if in.Liar(id) {
		f *= in.cfg.LiarFactor
	}
	for _, w := range in.slows {
		if w.Stage == stage && now >= w.Start && now < w.Start+w.Duration {
			f *= w.Factor
		}
	}
	return f
}

// DropIdle reports whether this stage-idle callback should be swallowed.
// Draw order follows simulation event order, so runs are reproducible.
func (in *Injector) DropIdle(stage int, now des.Time) bool {
	if in.cfg.IdleLossProb <= 0 {
		return false
	}
	if in.rng.Float64() < in.cfg.IdleLossProb {
		in.stats.IdleDropped++
		return true
	}
	return false
}

// Attach installs the schedule into the stages: exec models for demand
// inflation and slowdowns, and calendar events for stall windows. Call
// it once, before the simulation starts; stall windows already in the
// past are skipped.
func (in *Injector) Attach(sim *des.Simulator, stages []*sched.Stage) {
	if len(stages) != in.cfg.Stages {
		panic(fmt.Sprintf("faults: schedule spans %d stages, got %d", in.cfg.Stages, len(stages)))
	}
	if in.sim != nil {
		panic("faults: injector already attached")
	}
	in.sim = sim
	if in.cfg.LiarFraction > 0 || len(in.slows) > 0 {
		for j, st := range stages {
			j := j
			st.SetExecModel(func(id task.ID, nominal float64) float64 {
				f := in.execFactor(j, id, sim.Now())
				if f != 1 {
					in.stats.InflatedJobs++
				}
				return nominal * f
			})
		}
	}
	for _, w := range in.stalls {
		w := w
		if w.Start < sim.Now() {
			continue
		}
		st := stages[w.Stage]
		sim.At(w.Start, func() {
			st.Pause()
			in.stats.StallsFired++
			if w.DropProgress {
				in.stats.ProgressDropped += uint64(st.DropProgress())
			}
		})
		sim.At(w.Start+w.Duration, func() {
			st.Resume()
			in.stats.Restarts++
		})
	}
}

// SkewedClock wraps a wall clock with a deterministic sawtooth drift of
// the given amplitude and period: the returned clock runs ahead, falls
// behind, and even steps backwards across the sawtooth reset — the
// adversary for the online controller's lazy expiry, which must stay
// monotone under it. base may be nil (time.Now). The drift is anchored
// at the first call.
func SkewedClock(base func() time.Time, amplitude, period time.Duration) func() time.Time {
	if base == nil {
		base = time.Now
	}
	if period <= 0 {
		panic("faults: skew period must be positive")
	}
	var anchor time.Time
	return func() time.Time {
		now := base()
		if anchor.IsZero() {
			anchor = now
		}
		phase := math.Mod(now.Sub(anchor).Seconds(), period.Seconds()) / period.Seconds()
		// Sawtooth in [-1, 1): ramps up, then snaps back (a step change,
		// like an NTP correction).
		saw := 2*phase - 1
		return now.Add(time.Duration(saw * float64(amplitude)))
	}
}
