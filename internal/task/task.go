package task

import (
	"fmt"
	"math"
)

// ID identifies a task instance within one simulation run. IDs key the
// synthetic-utilization ledgers and departure marking, so they must be
// unique across ALL tasks offered or injected into one system —
// partition the ID space when combining independent generators.
type ID int64

// NoLock marks a segment that executes outside any critical section.
const NoLock = -1

// Segment is one contiguous piece of a subtask's execution. A segment with
// Lock != NoLock executes inside a critical section guarded by that
// stage-local lock (acquired at segment start, released at segment end).
type Segment struct {
	Duration float64
	Lock     int
}

// Subtask is the work a task performs on one pipeline stage (or DAG node's
// resource). Demand is the total computation time; Segments optionally
// partitions it into critical and non-critical pieces.
type Subtask struct {
	Demand   float64
	Segments []Segment
}

// NewSubtask returns a subtask with a single non-critical segment.
func NewSubtask(demand float64) Subtask {
	return Subtask{Demand: demand}
}

// SegmentsOrWhole returns the explicit segment list, or a synthetic
// single non-critical segment covering the whole demand.
func (s Subtask) SegmentsOrWhole() []Segment {
	if len(s.Segments) > 0 {
		return s.Segments
	}
	return []Segment{{Duration: s.Demand, Lock: NoLock}}
}

// Validate checks that explicit segments, when present, sum to Demand.
func (s Subtask) Validate() error {
	if s.Demand < 0 || math.IsNaN(s.Demand) {
		return fmt.Errorf("task: subtask demand %v is negative or NaN", s.Demand)
	}
	if len(s.Segments) == 0 {
		return nil
	}
	sum := 0.0
	for i, seg := range s.Segments {
		if seg.Duration < 0 || math.IsNaN(seg.Duration) {
			return fmt.Errorf("task: segment %d duration %v is negative or NaN", i, seg.Duration)
		}
		sum += seg.Duration
	}
	if math.Abs(sum-s.Demand) > 1e-9*(1+s.Demand) {
		return fmt.Errorf("task: segments sum to %v, demand is %v", sum, s.Demand)
	}
	return nil
}

// Task is one aperiodic arrival: it enters the pipeline at Arrival and must
// depart the final stage by Arrival+Deadline. For chain (pipeline) tasks,
// Subtasks[j] is the work on stage j. For DAG tasks, set Graph instead and
// leave Subtasks nil.
type Task struct {
	ID       ID
	Arrival  float64 // A_i: arrival time at the first stage
	Deadline float64 // D_i: relative end-to-end deadline

	// Subtasks is the precedence-constrained chain, one entry per stage.
	Subtasks []Subtask

	// Graph, when non-nil, replaces Subtasks with an arbitrary DAG of
	// subtasks allocated to named resources (paper §3.3).
	Graph *Graph

	// Priority is the scheduler priority, fixed across all stages; lower
	// values are more urgent. It is assigned by a Policy before submission.
	Priority float64

	// Importance is the semantic importance used for load shedding in the
	// TSCE application (§5); larger is more important. It is independent of
	// the scheduling priority.
	Importance float64

	// Class labels the task's stream (e.g. "tracking") for statistics.
	Class string
}

// AbsoluteDeadline returns A_i + D_i.
func (t *Task) AbsoluteDeadline() float64 { return t.Arrival + t.Deadline }

// TotalDemand returns the sum of computation demands across all subtasks.
func (t *Task) TotalDemand() float64 {
	if t.Graph != nil {
		sum := 0.0
		for _, n := range t.Graph.Nodes {
			sum += n.Subtask.Demand
		}
		return sum
	}
	sum := 0.0
	for _, s := range t.Subtasks {
		sum += s.Demand
	}
	return sum
}

// StageDemand returns C_ij for stage j of a chain task. Out-of-range
// stages have zero demand.
func (t *Task) StageDemand(j int) float64 {
	if j < 0 || j >= len(t.Subtasks) {
		return 0
	}
	return t.Subtasks[j].Demand
}

// Contribution returns the synthetic-utilization increment C_ij/D_i this
// task adds to stage j while current.
func (t *Task) Contribution(j int) float64 {
	if t.Deadline <= 0 {
		return math.Inf(1)
	}
	return t.StageDemand(j) / t.Deadline
}

// Validate checks structural invariants of the task.
func (t *Task) Validate() error {
	if t.Deadline <= 0 || math.IsNaN(t.Deadline) {
		return fmt.Errorf("task %d: deadline %v must be positive", t.ID, t.Deadline)
	}
	if t.Graph != nil {
		if len(t.Subtasks) > 0 {
			return fmt.Errorf("task %d: has both a subtask chain and a graph", t.ID)
		}
		return t.Graph.Validate()
	}
	if len(t.Subtasks) == 0 {
		return fmt.Errorf("task %d: has no subtasks", t.ID)
	}
	for j, s := range t.Subtasks {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("task %d stage %d: %w", t.ID, j, err)
		}
	}
	return nil
}

// Chain builds a chain task from plain per-stage demands.
func Chain(id ID, arrival, deadline float64, demands ...float64) *Task {
	subs := make([]Subtask, len(demands))
	for i, d := range demands {
		subs[i] = NewSubtask(d)
	}
	return &Task{ID: id, Arrival: arrival, Deadline: deadline, Subtasks: subs}
}
