package task

import (
	"fmt"
	"math"
)

// ID identifies a task instance within one simulation run. IDs key the
// synthetic-utilization ledgers and departure marking, so they must be
// unique across ALL tasks offered or injected into one system —
// partition the ID space when combining independent generators.
type ID int64

// NoLock marks a segment that executes outside any critical section.
const NoLock = -1

// QualityLevels is the height of the discrete quality ladder used by
// imprecise (mandatory/optional) tasks. Level 0 executes mandatory demand
// only, level QualityLevels executes the full demand, and level q in
// between executes M_ij + O_ij*q/QualityLevels on every stage. A small
// discrete ladder keeps the quality binary search O(log QualityLevels)
// region tests and makes governor transitions observable.
const QualityLevels = 8

// MandatoryUtility is the fraction of a task's value delivered by
// completing only its mandatory parts. The imprecise-computation reward
// model is deliberately concave in demand: the mandatory prefix produces
// an acceptable (if coarse) result, so it carries a disproportionate
// share of the value. Each optional quality step adds an equal share of
// the remaining 1 - MandatoryUtility.
const MandatoryUtility = 0.5

// Segment is one contiguous piece of a subtask's execution. A segment with
// Lock != NoLock executes inside a critical section guarded by that
// stage-local lock (acquired at segment start, released at segment end).
type Segment struct {
	Duration float64
	Lock     int
}

// Subtask is the work a task performs on one pipeline stage (or DAG node's
// resource). Demand is the total computation time; Segments optionally
// partitions it into critical and non-critical pieces.
//
// Optional splits Demand into an imprecise-computation pair
// C_ij = M_ij + O_ij: the first Demand-Optional units are mandatory
// (the result is unacceptable without them) and the trailing Optional
// units refine it. Quality-aware admission may trim any prefix of the
// optional part; Optional = 0 reproduces the paper's all-or-nothing
// model. Optional demand cannot be combined with explicit Segments
// (critical sections are not skippable).
type Subtask struct {
	Demand   float64
	Optional float64
	Segments []Segment
}

// NewSubtask returns a subtask with a single non-critical segment.
func NewSubtask(demand float64) Subtask {
	return Subtask{Demand: demand}
}

// SegmentsOrWhole returns the explicit segment list, or a synthetic
// single non-critical segment covering the whole demand.
func (s Subtask) SegmentsOrWhole() []Segment {
	if len(s.Segments) > 0 {
		return s.Segments
	}
	return []Segment{{Duration: s.Demand, Lock: NoLock}}
}

// Mandatory returns M_ij = Demand - Optional, the part of the subtask
// that quality degradation can never trim.
func (s Subtask) Mandatory() float64 { return s.Demand - s.Optional }

// DemandAt returns the subtask's computation demand when executed at the
// given quality level: the mandatory part plus level/QualityLevels of the
// optional part. Levels outside [0, QualityLevels] are clamped.
func (s Subtask) DemandAt(level int) float64 {
	if s.Optional == 0 || level >= QualityLevels {
		return s.Demand
	}
	if level <= 0 {
		return s.Demand - s.Optional
	}
	return s.Demand - s.Optional*(1-float64(level)/QualityLevels)
}

// Validate checks that explicit segments, when present, sum to Demand.
func (s Subtask) Validate() error {
	if s.Demand < 0 || math.IsNaN(s.Demand) {
		return fmt.Errorf("task: subtask demand %v is negative or NaN", s.Demand)
	}
	if s.Optional < 0 || s.Optional > s.Demand || math.IsNaN(s.Optional) {
		return fmt.Errorf("task: optional demand %v outside [0, %v]", s.Optional, s.Demand)
	}
	if s.Optional > 0 && len(s.Segments) > 0 {
		return fmt.Errorf("task: optional demand cannot be combined with explicit segments")
	}
	if len(s.Segments) == 0 {
		return nil
	}
	sum := 0.0
	for i, seg := range s.Segments {
		if seg.Duration < 0 || math.IsNaN(seg.Duration) {
			return fmt.Errorf("task: segment %d duration %v is negative or NaN", i, seg.Duration)
		}
		sum += seg.Duration
	}
	if math.Abs(sum-s.Demand) > 1e-9*(1+s.Demand) {
		return fmt.Errorf("task: segments sum to %v, demand is %v", sum, s.Demand)
	}
	return nil
}

// Task is one aperiodic arrival: it enters the pipeline at Arrival and must
// depart the final stage by Arrival+Deadline. For chain (pipeline) tasks,
// Subtasks[j] is the work on stage j. For DAG tasks, set Graph instead and
// leave Subtasks nil.
type Task struct {
	ID       ID
	Arrival  float64 // A_i: arrival time at the first stage
	Deadline float64 // D_i: relative end-to-end deadline

	// Subtasks is the precedence-constrained chain, one entry per stage.
	Subtasks []Subtask

	// Graph, when non-nil, replaces Subtasks with an arbitrary DAG of
	// subtasks allocated to named resources (paper §3.3).
	Graph *Graph

	// Priority is the scheduler priority, fixed across all stages; lower
	// values are more urgent. It is assigned by a Policy before submission.
	Priority float64

	// Importance is the semantic importance used for load shedding in the
	// TSCE application (§5); larger is more important. It is independent of
	// the scheduling priority.
	Importance float64

	// Class labels the task's stream (e.g. "tracking") for statistics.
	Class string
}

// AbsoluteDeadline returns A_i + D_i.
func (t *Task) AbsoluteDeadline() float64 { return t.Arrival + t.Deadline }

// TotalDemand returns the sum of computation demands across all subtasks.
func (t *Task) TotalDemand() float64 {
	if t.Graph != nil {
		sum := 0.0
		for _, n := range t.Graph.Nodes {
			sum += n.Subtask.Demand
		}
		return sum
	}
	sum := 0.0
	for _, s := range t.Subtasks {
		sum += s.Demand
	}
	return sum
}

// StageDemand returns C_ij for stage j of a chain task. Out-of-range
// stages have zero demand.
func (t *Task) StageDemand(j int) float64 {
	if j < 0 || j >= len(t.Subtasks) {
		return 0
	}
	return t.Subtasks[j].Demand
}

// Contribution returns the synthetic-utilization increment C_ij/D_i this
// task adds to stage j while current.
func (t *Task) Contribution(j int) float64 {
	if t.Deadline <= 0 {
		return math.Inf(1)
	}
	return t.StageDemand(j) / t.Deadline
}

// StageDemandAt returns the demand of stage j when the task executes at
// the given quality level (see Subtask.DemandAt). Out-of-range stages
// have zero demand.
func (t *Task) StageDemandAt(j, level int) float64 {
	if j < 0 || j >= len(t.Subtasks) {
		return 0
	}
	return t.Subtasks[j].DemandAt(level)
}

// MandatoryDemand returns M_ij for stage j: the demand that remains at
// quality level 0.
func (t *Task) MandatoryDemand(j int) float64 { return t.StageDemandAt(j, 0) }

// OptionalDemand returns O_ij for stage j: the demand trimmed away when
// the task degrades from full quality to mandatory-only.
func (t *Task) OptionalDemand(j int) float64 {
	if j < 0 || j >= len(t.Subtasks) {
		return 0
	}
	return t.Subtasks[j].Optional
}

// HasOptional reports whether any stage of the task carries optional
// demand, i.e. whether quality degradation can shrink it at all.
func (t *Task) HasOptional() bool {
	for _, s := range t.Subtasks {
		if s.Optional > 0 {
			return true
		}
	}
	return false
}

// Utility returns the value delivered by completing the task at the given
// quality level, normalized to [0, 1]: MandatoryUtility for a
// mandatory-only run, 1 for a full-quality run, linear in the level in
// between. Tasks with no optional demand always deliver 1. Rejected or
// evicted tasks deliver 0 (there is no level for them; callers simply do
// not count them).
func (t *Task) Utility(level int) float64 {
	if !t.HasOptional() || level >= QualityLevels {
		return 1
	}
	if level < 0 {
		level = 0
	}
	return MandatoryUtility + (1-MandatoryUtility)*float64(level)/QualityLevels
}

// SetOptionalFraction marks frac of every stage's demand as optional
// (clamped to [0, 1]) and returns the task, for fluent construction of
// imprecise chains. Stages with explicit segments are left untouched.
func (t *Task) SetOptionalFraction(frac float64) *Task {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	for j := range t.Subtasks {
		if len(t.Subtasks[j].Segments) > 0 {
			continue
		}
		t.Subtasks[j].Optional = t.Subtasks[j].Demand * frac
	}
	return t
}

// Validate checks structural invariants of the task.
func (t *Task) Validate() error {
	if t.Deadline <= 0 || math.IsNaN(t.Deadline) {
		return fmt.Errorf("task %d: deadline %v must be positive", t.ID, t.Deadline)
	}
	if t.Graph != nil {
		if len(t.Subtasks) > 0 {
			return fmt.Errorf("task %d: has both a subtask chain and a graph", t.ID)
		}
		return t.Graph.Validate()
	}
	if len(t.Subtasks) == 0 {
		return fmt.Errorf("task %d: has no subtasks", t.ID)
	}
	for j, s := range t.Subtasks {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("task %d stage %d: %w", t.ID, j, err)
		}
	}
	return nil
}

// Chain builds a chain task from plain per-stage demands.
func Chain(id ID, arrival, deadline float64, demands ...float64) *Task {
	subs := make([]Subtask, len(demands))
	for i, d := range demands {
		subs[i] = NewSubtask(d)
	}
	return &Task{ID: id, Arrival: arrival, Deadline: deadline, Subtasks: subs}
}
