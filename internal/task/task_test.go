package task

import (
	"math"
	"testing"
	"testing/quick"

	"feasregion/internal/dist"
)

func TestChainConstructor(t *testing.T) {
	tk := Chain(7, 10, 2, 0.5, 0.25, 0.75)
	if tk.ID != 7 || tk.Arrival != 10 || tk.Deadline != 2 {
		t.Fatalf("chain header wrong: %+v", tk)
	}
	if got := tk.TotalDemand(); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("TotalDemand = %v, want 1.5", got)
	}
	if got := tk.AbsoluteDeadline(); got != 12 {
		t.Fatalf("AbsoluteDeadline = %v, want 12", got)
	}
	if err := tk.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestStageDemandOutOfRange(t *testing.T) {
	tk := Chain(1, 0, 1, 0.3, 0.4)
	if tk.StageDemand(-1) != 0 || tk.StageDemand(2) != 0 {
		t.Fatal("out-of-range stage demand should be zero")
	}
	if tk.StageDemand(1) != 0.4 {
		t.Fatal("in-range stage demand wrong")
	}
}

func TestContribution(t *testing.T) {
	tk := Chain(1, 0, 4, 1, 2)
	if got := tk.Contribution(0); got != 0.25 {
		t.Fatalf("Contribution(0) = %v, want 0.25", got)
	}
	if got := tk.Contribution(1); got != 0.5 {
		t.Fatalf("Contribution(1) = %v, want 0.5", got)
	}
}

func TestValidateRejectsBadTasks(t *testing.T) {
	tests := []struct {
		name string
		tk   *Task
	}{
		{"zero deadline", Chain(1, 0, 0, 1)},
		{"negative deadline", Chain(1, 0, -1, 1)},
		{"no subtasks", &Task{ID: 1, Deadline: 1}},
		{"negative demand", Chain(1, 0, 1, -0.5)},
		{"chain and graph", func() *Task {
			tk := Chain(1, 0, 1, 0.5)
			tk.Graph = ChainGraph(0.5)
			return tk
		}()},
		{"segment sum mismatch", &Task{ID: 1, Deadline: 1, Subtasks: []Subtask{{
			Demand:   1,
			Segments: []Segment{{Duration: 0.3, Lock: NoLock}, {Duration: 0.3, Lock: 0}},
		}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.tk.Validate(); err == nil {
				t.Error("Validate accepted an invalid task")
			}
		})
	}
}

func TestValidateAcceptsSegmentedSubtask(t *testing.T) {
	tk := &Task{ID: 1, Deadline: 1, Subtasks: []Subtask{{
		Demand:   1,
		Segments: []Segment{{Duration: 0.3, Lock: NoLock}, {Duration: 0.5, Lock: 2}, {Duration: 0.2, Lock: NoLock}},
	}}}
	if err := tk.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestSegmentsOrWhole(t *testing.T) {
	s := NewSubtask(1.5)
	segs := s.SegmentsOrWhole()
	if len(segs) != 1 || segs[0].Duration != 1.5 || segs[0].Lock != NoLock {
		t.Fatalf("SegmentsOrWhole = %+v", segs)
	}
	s.Segments = []Segment{{Duration: 1, Lock: 3}, {Duration: 0.5, Lock: NoLock}}
	if got := s.SegmentsOrWhole(); len(got) != 2 {
		t.Fatalf("explicit segments not returned: %+v", got)
	}
}

func TestGraphTopoOrder(t *testing.T) {
	// Figure 3: 1 -> {2, 3} -> 4.
	g := NewGraph()
	n1 := g.AddNode(0, NewSubtask(1))
	n2 := g.AddNode(1, NewSubtask(1))
	n3 := g.AddNode(2, NewSubtask(1))
	n4 := g.AddNode(3, NewSubtask(1))
	g.AddEdge(n1, n2)
	g.AddEdge(n1, n3)
	g.AddEdge(n2, n4)
	g.AddEdge(n3, n4)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, n := range order {
		pos[n] = i
	}
	for u, succs := range g.Edges {
		for _, v := range succs {
			if pos[u] >= pos[v] {
				t.Fatalf("topological order violates edge %d->%d: %v", u, v, order)
			}
		}
	}
}

func TestGraphCycleDetected(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(0, NewSubtask(1))
	b := g.AddNode(1, NewSubtask(1))
	g.AddEdge(a, b)
	g.AddEdge(b, a)
	if err := g.Validate(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestGraphValidateRejectsBadEdges(t *testing.T) {
	g := NewGraph()
	g.AddNode(0, NewSubtask(1))
	g.Edges[0] = append(g.Edges[0], 5)
	if err := g.Validate(); err == nil {
		t.Fatal("out-of-range edge not detected")
	}
	g2 := NewGraph()
	g2.AddNode(0, NewSubtask(1))
	g2.Edges[0] = append(g2.Edges[0], 0)
	if err := g2.Validate(); err == nil {
		t.Fatal("self-loop not detected")
	}
}

func TestLongestPathFigure3(t *testing.T) {
	// End-to-end delay of Figure 3 is L1 + max(L2, L3) + L4.
	g := NewGraph()
	n1 := g.AddNode(0, NewSubtask(1))
	n2 := g.AddNode(1, NewSubtask(1))
	n3 := g.AddNode(2, NewSubtask(1))
	n4 := g.AddNode(3, NewSubtask(1))
	g.AddEdge(n1, n2)
	g.AddEdge(n1, n3)
	g.AddEdge(n2, n4)
	g.AddEdge(n3, n4)
	l := []float64{5, 2, 3, 7}
	got := g.LongestPath(func(n int) float64 { return l[n] })
	want := l[0] + math.Max(l[1], l[2]) + l[3]
	if got != want {
		t.Fatalf("LongestPath = %v, want %v", got, want)
	}
}

func TestLongestPathChainIsSum(t *testing.T) {
	g := ChainGraph(1, 1, 1, 1)
	w := []float64{0.5, 1.5, 2.5, 3.5}
	got := g.LongestPath(func(n int) float64 { return w[n] })
	if got != 8 {
		t.Fatalf("chain longest path = %v, want 8", got)
	}
}

func TestLongestPathDisconnected(t *testing.T) {
	// Two parallel nodes, no edges: delay is the max of the two.
	g := NewGraph()
	g.AddNode(0, NewSubtask(1))
	g.AddNode(1, NewSubtask(1))
	got := g.LongestPath(func(n int) float64 { return float64(n + 1) })
	if got != 2 {
		t.Fatalf("LongestPath = %v, want 2", got)
	}
}

func TestChainGraphStructure(t *testing.T) {
	g := ChainGraph(0.1, 0.2, 0.3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.MaxResource() != 2 {
		t.Fatalf("MaxResource = %d, want 2", g.MaxResource())
	}
	in := g.Predecessors()
	if in[0] != 0 || in[1] != 1 || in[2] != 1 {
		t.Fatalf("predecessor counts %v", in)
	}
}

// TestLongestPathMonotoneQuick: increasing any node weight never decreases
// the longest path (a property the feasible-region evaluation relies on).
func TestLongestPathMonotoneQuick(t *testing.T) {
	g := NewGraph()
	n1 := g.AddNode(0, NewSubtask(1))
	n2 := g.AddNode(1, NewSubtask(1))
	n3 := g.AddNode(2, NewSubtask(1))
	n4 := g.AddNode(3, NewSubtask(1))
	g.AddEdge(n1, n2)
	g.AddEdge(n1, n3)
	g.AddEdge(n2, n4)
	g.AddEdge(n3, n4)
	f := func(a, b, c, d uint8, which uint8, bump uint8) bool {
		w := []float64{float64(a), float64(b), float64(c), float64(d)}
		base := g.LongestPath(func(n int) float64 { return w[n] })
		w[int(which)%4] += float64(bump)
		return g.LongestPath(func(n int) float64 { return w[n] }) >= base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPolicies(t *testing.T) {
	g := dist.NewRNG(1)
	short := Chain(1, 100, 1, 0.5)
	long := Chain(2, 0, 10, 0.5)
	long.Importance = 5
	short.Importance = 1

	t.Run("deadline-monotonic", func(t *testing.T) {
		var p DeadlineMonotonic
		if !p.Fixed() {
			t.Error("DM must be fixed-priority")
		}
		if p.Assign(short, g) >= p.Assign(long, g) {
			t.Error("DM must prioritize the shorter deadline")
		}
	})
	t.Run("edf", func(t *testing.T) {
		var p EDF
		if p.Fixed() {
			t.Error("EDF must not be fixed-priority")
		}
		// short arrives at 100 with D=1 -> abs 101; long abs 10.
		if p.Assign(long, g) >= p.Assign(short, g) {
			t.Error("EDF must prioritize the earlier absolute deadline")
		}
	})
	t.Run("semantic", func(t *testing.T) {
		var p SemanticImportance
		if !p.Fixed() {
			t.Error("semantic importance is fixed-priority")
		}
		if p.Assign(long, g) >= p.Assign(short, g) {
			t.Error("higher importance must map to more urgent priority")
		}
	})
	t.Run("fifo", func(t *testing.T) {
		var p FIFO
		if p.Fixed() {
			t.Error("FIFO is arrival-dependent")
		}
		if p.Assign(long, g) >= p.Assign(short, g) {
			t.Error("FIFO must prioritize the earlier arrival")
		}
	})
	t.Run("random", func(t *testing.T) {
		var p Random
		if !p.Fixed() {
			t.Error("random assignment is fixed-priority")
		}
		seen := map[float64]bool{}
		for i := 0; i < 8; i++ {
			seen[p.Assign(short, g)] = true
		}
		if len(seen) < 2 {
			t.Error("random policy produced constant priorities")
		}
	})
}

func TestZeroDeadlineContributionIsInf(t *testing.T) {
	tk := &Task{ID: 1, Deadline: 0, Subtasks: []Subtask{NewSubtask(1)}}
	if !math.IsInf(tk.Contribution(0), 1) {
		t.Fatal("zero-deadline contribution should be +Inf so admission always rejects")
	}
}

func TestQualityLadder(t *testing.T) {
	tk := Chain(1, 0, 10, 1.0, 2.0).SetOptionalFraction(0.5)
	if !tk.HasOptional() {
		t.Fatal("SetOptionalFraction did not mark optional demand")
	}
	if got := tk.MandatoryDemand(0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("MandatoryDemand(0) = %v, want 0.5", got)
	}
	if got := tk.OptionalDemand(1); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("OptionalDemand(1) = %v, want 1.0", got)
	}
	// Level endpoints and monotonicity of the ladder.
	if got := tk.StageDemandAt(0, QualityLevels); got != tk.StageDemand(0) {
		t.Fatalf("full level demand %v != StageDemand %v", got, tk.StageDemand(0))
	}
	if got := tk.StageDemandAt(0, 0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("level-0 demand %v, want mandatory 0.5", got)
	}
	prev := -1.0
	for q := 0; q <= QualityLevels; q++ {
		d := tk.StageDemandAt(1, q)
		if d < prev {
			t.Fatalf("demand not monotone in level: level %d demand %v < %v", q, d, prev)
		}
		if d < tk.MandatoryDemand(1)-1e-12 || d > tk.StageDemand(1)+1e-12 {
			t.Fatalf("level %d demand %v outside [mandatory, full]", q, d)
		}
		prev = d
	}
	// Clamping.
	if tk.StageDemandAt(0, -3) != tk.MandatoryDemand(0) {
		t.Fatal("negative level should clamp to mandatory")
	}
	if tk.StageDemandAt(0, QualityLevels+5) != tk.StageDemand(0) {
		t.Fatal("over-max level should clamp to full demand")
	}
}

func TestUtilityModel(t *testing.T) {
	imp := Chain(1, 0, 10, 1).SetOptionalFraction(0.6)
	if got := imp.Utility(QualityLevels); got != 1 {
		t.Fatalf("full-quality utility = %v, want 1", got)
	}
	if got := imp.Utility(0); got != MandatoryUtility {
		t.Fatalf("mandatory-only utility = %v, want %v", got, MandatoryUtility)
	}
	half := imp.Utility(QualityLevels / 2)
	want := MandatoryUtility + (1-MandatoryUtility)*0.5
	if math.Abs(half-want) > 1e-12 {
		t.Fatalf("mid-ladder utility = %v, want %v", half, want)
	}
	// Utility is concave in executed demand: the mandatory prefix is worth
	// more per unit than the optional tail (the reason degradation wins
	// under overload).
	if MandatoryUtility <= imp.MandatoryDemand(0)/imp.StageDemand(0) {
		t.Fatal("utility model must be concave: mandatory value share must exceed its demand share")
	}
	rigid := Chain(2, 0, 10, 1)
	if rigid.Utility(0) != 1 {
		t.Fatal("tasks without optional demand always deliver full utility")
	}
}

func TestValidateRejectsBadOptional(t *testing.T) {
	over := Chain(1, 0, 1, 1)
	over.Subtasks[0].Optional = 1.5
	if err := over.Validate(); err == nil {
		t.Error("optional > demand accepted")
	}
	neg := Chain(2, 0, 1, 1)
	neg.Subtasks[0].Optional = -0.1
	if err := neg.Validate(); err == nil {
		t.Error("negative optional accepted")
	}
	seg := &Task{ID: 3, Deadline: 1, Subtasks: []Subtask{{
		Demand:   1,
		Optional: 0.5,
		Segments: []Segment{{Duration: 1, Lock: NoLock}},
	}}}
	if err := seg.Validate(); err == nil {
		t.Error("optional demand combined with segments accepted")
	}
}

func TestSetOptionalFractionSkipsSegmented(t *testing.T) {
	tk := &Task{ID: 1, Deadline: 1, Subtasks: []Subtask{
		NewSubtask(1),
		{Demand: 1, Segments: []Segment{{Duration: 1, Lock: 0}}},
	}}
	tk.SetOptionalFraction(0.5)
	if tk.Subtasks[0].Optional != 0.5 {
		t.Fatal("plain subtask should gain optional demand")
	}
	if tk.Subtasks[1].Optional != 0 {
		t.Fatal("segmented subtask must stay fully mandatory")
	}
	if err := tk.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOrderVictims(t *testing.T) {
	mk := func(id ID, imp, deadline float64, demands ...float64) *Task {
		tk := Chain(id, 0, deadline, demands...)
		tk.Importance = imp
		return tk
	}
	a := mk(1, 2, 10, 1)     // weight 0.1
	b := mk(2, 1, 10, 4)     // least important, weight 0.4
	c := mk(3, 1, 10, 1)     // least important, weight 0.1
	d := mk(4, 5, 10, 1)     // most important
	e := mk(5, 1, 10, 1)     // ties with c except ID
	victims := []*Task{d, a, c, b, e}
	OrderVictims(victims)
	wantIDs := []ID{2, 5, 3, 1, 4}
	for i, v := range victims {
		if v.ID != wantIDs[i] {
			got := make([]ID, len(victims))
			for j, w := range victims {
				got[j] = w.ID
			}
			t.Fatalf("victim order = %v, want %v", got, wantIDs)
		}
	}
	// Deterministic: re-sorting a shuffled copy gives the same order.
	again := []*Task{e, b, d, a, c}
	OrderVictims(again)
	for i := range again {
		if again[i].ID != victims[i].ID {
			t.Fatal("OrderVictims is not deterministic")
		}
	}
}
