// Package task defines the workload model of the paper: aperiodically
// arriving tasks with per-stage computation demands C_ij, end-to-end
// relative deadlines D_i, optional critical sections, and optional
// DAG-structured subtask graphs (§3.3). It also defines the
// fixed-priority assignment policies whose urgency-inversion parameter α
// the analysis depends on: α = 1 for deadline-monotonic (Eq. 13) and
// α = Dleast/Dmost for deadline-independent policies (Eq. 12).
package task
