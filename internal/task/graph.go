package task

import (
	"fmt"
)

// Node is one subtask in a DAG task graph, allocated to a resource.
// Resources are identified by dense indices into the system's resource set
// (for a pipeline these coincide with stage indices).
type Node struct {
	Resource int
	Subtask  Subtask
}

// Graph is a directed acyclic graph of subtasks (paper §3.3, Figure 3).
// Edges[i] lists the successors of node i; nodes with no predecessors
// become ready at task arrival, and the task departs when every node has
// completed. Multiple nodes may share one resource.
type Graph struct {
	Nodes []Node
	Edges [][]int
}

// NewGraph returns an empty graph builder.
func NewGraph() *Graph { return &Graph{} }

// AddNode appends a subtask on the given resource and returns its index.
func (g *Graph) AddNode(resource int, sub Subtask) int {
	g.Nodes = append(g.Nodes, Node{Resource: resource, Subtask: sub})
	g.Edges = append(g.Edges, nil)
	return len(g.Nodes) - 1
}

// AddEdge adds a precedence constraint from node u to node v.
func (g *Graph) AddEdge(u, v int) {
	g.Edges[u] = append(g.Edges[u], v)
}

// Predecessors returns the in-degree of every node.
func (g *Graph) Predecessors() []int {
	in := make([]int, len(g.Nodes))
	for _, succs := range g.Edges {
		for _, v := range succs {
			in[v]++
		}
	}
	return in
}

// TopoOrder returns a topological ordering of the nodes, or an error if
// the graph has a cycle.
func (g *Graph) TopoOrder() ([]int, error) {
	in := g.Predecessors()
	var queue []int
	for i, d := range in {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, len(g.Nodes))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range g.Edges[u] {
			in[v]--
			if in[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(order) != len(g.Nodes) {
		return nil, fmt.Errorf("task: graph has a cycle (%d of %d nodes orderable)", len(order), len(g.Nodes))
	}
	return order, nil
}

// Validate checks that the graph is a well-formed DAG with valid subtasks
// and in-range edges.
func (g *Graph) Validate() error {
	if len(g.Nodes) == 0 {
		return fmt.Errorf("task: graph has no nodes")
	}
	if len(g.Edges) != len(g.Nodes) {
		return fmt.Errorf("task: graph has %d nodes but %d adjacency rows", len(g.Nodes), len(g.Edges))
	}
	for i, n := range g.Nodes {
		if n.Resource < 0 {
			return fmt.Errorf("task: node %d has negative resource %d", i, n.Resource)
		}
		if err := n.Subtask.Validate(); err != nil {
			return fmt.Errorf("task: node %d: %w", i, err)
		}
	}
	for u, succs := range g.Edges {
		for _, v := range succs {
			if v < 0 || v >= len(g.Nodes) {
				return fmt.Errorf("task: edge %d->%d out of range", u, v)
			}
			if v == u {
				return fmt.Errorf("task: self-loop on node %d", u)
			}
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// MaxResource returns the largest resource index referenced by the graph.
func (g *Graph) MaxResource() int {
	max := -1
	for _, n := range g.Nodes {
		if n.Resource > max {
			max = n.Resource
		}
	}
	return max
}

// LongestPath computes the maximum, over all source-to-sink paths, of the
// sum of weight(node) along the path. This is the paper's end-to-end delay
// expression d(L_1, ..., L_M) for a DAG: with weight(i) = L_i it returns
// the worst-case end-to-end delay, and with weight(i) = f(U_{k_i}) + β_{k_i}
// it evaluates the left-hand side of Theorem 2.
//
// The graph must be acyclic; call Validate first. LongestPath panics on a
// cyclic graph because that is a programming error already rejected by
// Validate.
func (g *Graph) LongestPath(weight func(node int) float64) float64 {
	order, err := g.TopoOrder()
	if err != nil {
		panic("task: LongestPath on cyclic graph: " + err.Error())
	}
	// best[i] = max path weight ending at node i (inclusive).
	best := make([]float64, len(g.Nodes))
	for _, u := range order {
		best[u] += weight(u)
		for _, v := range g.Edges[u] {
			if best[u] > best[v] {
				best[v] = best[u]
			}
		}
	}
	max := 0.0
	for _, b := range best {
		if b > max {
			max = b
		}
	}
	return max
}

// ChainGraph builds the degenerate pipeline graph: node j runs on resource
// j with the given demands, with edges 0->1->...->n-1.
func ChainGraph(demands ...float64) *Graph {
	g := NewGraph()
	for j, d := range demands {
		g.AddNode(j, NewSubtask(d))
		if j > 0 {
			g.AddEdge(j-1, j)
		}
	}
	return g
}
