package task

import (
	"sort"

	"feasregion/internal/dist"
)

// Policy assigns scheduling priorities to tasks. Priorities are numeric
// with lower values more urgent, and — for the fixed-priority policies the
// analysis covers — are fixed across all pipeline stages and independent of
// arrival time.
type Policy interface {
	// Name identifies the policy in experiment logs.
	Name() string
	// Assign returns the task's priority. Policies that randomize draw
	// from g; deterministic policies ignore it.
	Assign(t *Task, g *dist.RNG) float64
	// Fixed reports whether the policy is fixed-priority in the paper's
	// sense (priority not a function of arrival time). EDF is not.
	Fixed() bool
}

// DeadlineMonotonic prioritizes tasks by relative deadline (shorter
// deadline = higher priority). It is the optimal uniprocessor fixed-priority
// policy for aperiodic tasks and has urgency-inversion parameter α = 1.
type DeadlineMonotonic struct{}

// Name implements Policy.
func (DeadlineMonotonic) Name() string { return "deadline-monotonic" }

// Assign implements Policy: priority equals the relative deadline.
func (DeadlineMonotonic) Assign(t *Task, _ *dist.RNG) float64 { return t.Deadline }

// Fixed implements Policy.
func (DeadlineMonotonic) Fixed() bool { return true }

// EDF prioritizes tasks by absolute deadline. It is NOT a fixed-priority
// policy in the paper's sense (priority depends on arrival time), so the
// feasible-region guarantee does not apply; it is provided as a comparison
// scheduler for the simulator.
type EDF struct{}

// Name implements Policy.
func (EDF) Name() string { return "edf" }

// Assign implements Policy: priority equals the absolute deadline.
func (EDF) Assign(t *Task, _ *dist.RNG) float64 { return t.AbsoluteDeadline() }

// Fixed implements Policy.
func (EDF) Fixed() bool { return false }

// EDFApprox is the fixed-priority approximation of EDF: a task's
// priority is its absolute deadline A_i + D_i, computed once at arrival
// and never re-evaluated. Unlike EDF (whose relative urgency ordering
// shifts as new tasks arrive and which therefore falls outside the
// paper's policy class), the frozen assignment is a legitimate
// fixed-priority policy, so the feasible region applies with the α the
// concurrent population earns — at least Dleast/Dmost, and typically
// much closer to 1 because absolute-deadline order inverts relative
// deadlines only across staggered arrivals (estimate it with
// core.AlphaForPolicy over a representative arrival sample).
type EDFApprox struct{}

// Name implements Policy.
func (EDFApprox) Name() string { return "edf-approx" }

// Assign implements Policy: priority is the absolute deadline, frozen.
func (EDFApprox) Assign(t *Task, _ *dist.RNG) float64 { return t.AbsoluteDeadline() }

// Fixed implements Policy.
func (EDFApprox) Fixed() bool { return true }

// Random assigns uniformly random priorities. Its urgency-inversion
// parameter over a task set with deadlines in [Dleast, Dmost] is
// α = Dleast/Dmost (paper §2).
type Random struct{}

// Name implements Policy.
func (Random) Name() string { return "random" }

// Assign implements Policy: priority is a uniform random draw.
func (Random) Assign(_ *Task, g *dist.RNG) float64 { return g.Float64() }

// Fixed implements Policy.
func (Random) Fixed() bool { return true }

// SemanticImportance prioritizes tasks by semantic importance (more
// important = higher priority), the naive alternative the TSCE section
// argues against: it is fixed-priority but generally exhibits urgency
// inversion (α < 1).
type SemanticImportance struct{}

// Name implements Policy.
func (SemanticImportance) Name() string { return "semantic-importance" }

// Assign implements Policy: priority is the negated importance.
func (SemanticImportance) Assign(t *Task, _ *dist.RNG) float64 { return -t.Importance }

// Fixed implements Policy.
func (SemanticImportance) Fixed() bool { return true }

// OrderVictims sorts tasks in place into the canonical victim order
// shared by load shedding (§5) and quality degradation: least important
// first, and among equally important tasks the one freeing the most
// synthetic utilization (TotalDemand/Deadline) first, with descending ID
// as the final tie-break so the order is deterministic across runs.
// Eviction and optional-demand trimming both walk this order, so the two
// mechanisms always sacrifice the same tasks first.
func OrderVictims(victims []*Task) {
	sort.Slice(victims, func(a, b int) bool {
		va, vb := victims[a], victims[b]
		if va.Importance != vb.Importance {
			return va.Importance < vb.Importance
		}
		ca, cb := victimWeight(va), victimWeight(vb)
		if ca != cb {
			return ca > cb
		}
		return va.ID > vb.ID
	})
}

// victimWeight is the total synthetic utilization a task frees when
// evicted, used as the secondary victim-order key.
func victimWeight(t *Task) float64 {
	if t.Deadline <= 0 {
		return 0
	}
	return t.TotalDemand() / t.Deadline
}

// FIFO serves tasks in arrival order. Like EDF it is arrival-time
// dependent and serves only as a simulator baseline.
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "fifo" }

// Assign implements Policy: priority is the arrival time.
func (FIFO) Assign(t *Task, _ *dist.RNG) float64 { return t.Arrival }

// Fixed implements Policy.
func (FIFO) Fixed() bool { return false }
