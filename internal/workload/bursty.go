package workload

import (
	"fmt"

	"feasregion/internal/des"
	"feasregion/internal/dist"
	"feasregion/internal/task"
)

// BurstySpec describes a two-state (on/off) Markov-modulated Poisson
// arrival process over the §4 task population: during ON periods tasks
// arrive at a rate inflated by Burstiness; during OFF periods nothing
// arrives. The long-run average rate matches the underlying
// PipelineSpec, so bursty and smooth runs are load-comparable.
type BurstySpec struct {
	Pipeline PipelineSpec
	// Burstiness is the ON-period rate multiplier (> 1). The ON fraction
	// is 1/Burstiness so the mean rate is preserved.
	Burstiness float64
	// MeanOn is the mean ON-period duration (exponentially distributed).
	MeanOn float64
}

// validate panics on impossible parameters.
func (s BurstySpec) validate() {
	s.Pipeline.validate()
	if s.Burstiness <= 1 {
		panic(fmt.Sprintf("workload: burstiness must exceed 1, got %v", s.Burstiness))
	}
	if s.MeanOn <= 0 {
		panic(fmt.Sprintf("workload: mean ON duration must be positive, got %v", s.MeanOn))
	}
}

// MeanOff returns the mean OFF-period duration that preserves the
// long-run rate: on-fraction = MeanOn/(MeanOn+MeanOff) = 1/Burstiness.
func (s BurstySpec) MeanOff() float64 {
	s.validate()
	return s.MeanOn * (s.Burstiness - 1)
}

// NewBurstySource builds the on-off generator. Tasks are drawn from the
// same per-stage demand and deadline distributions as NewSource.
func NewBurstySource(sim *des.Simulator, spec BurstySpec, seed int64, horizon des.Time, offer func(*task.Task)) *Source {
	spec.validate()
	src := NewSource(sim, spec.Pipeline, seed, horizon, offer)
	// Replace the homogeneous arrival schedule with the modulated one:
	// neutralize the plain source's own scheduling by starting phases
	// explicitly.
	onRate := src.rate * spec.Burstiness
	phases := dist.NewRNG(seed ^ 0x0ff)
	var on func()
	var off func()
	on = func() {
		end := sim.Now() + phases.ExpFloat64()*spec.MeanOn
		if end > horizon {
			end = horizon
		}
		var arrive func()
		arrive = func() {
			at := sim.Now() + src.rng.ExpFloat64()/onRate
			if at > end {
				if end < horizon {
					sim.At(end, off)
				}
				return
			}
			sim.At(at, func() {
				src.emit()
				arrive()
			})
		}
		arrive()
	}
	off = func() {
		at := sim.Now() + phases.ExpFloat64()*spec.MeanOff()
		if at > horizon {
			return
		}
		sim.At(at, on)
	}
	src.start = on
	return src
}
