package workload

import (
	"fmt"
	"io"
	"math"
	"sort"

	"feasregion/internal/des"
	"feasregion/internal/dist"
	"feasregion/internal/task"
)

// RatePoint is one breakpoint of a piecewise-linear arrival-rate curve:
// the aggregate Poisson rate is Rate at time At and interpolates linearly
// between consecutive points (constant before the first and after the
// last). Diurnal patterns are a handful of these per simulated day.
type RatePoint struct {
	At   float64
	Rate float64
}

// Cohort is one user class inside a scenario: a share of the arrival
// stream with its own demand scale and deadline behavior.
type Cohort struct {
	// Name labels the cohort's tasks (Task.Class and the trace class
	// table).
	Name string
	// Share is the cohort's fraction of all arrivals; shares must sum
	// to 1.
	Share float64
	// DemandScale multiplies the scenario's per-stage mean demands for
	// this cohort (1 = baseline).
	DemandScale float64
	// Resolution is the cohort's mean deadline over its mean total
	// computation (the paper's task resolution).
	Resolution float64
	// DeadlineSpread widens the uniform deadline distribution to
	// mean·[1−s, 1+s]; 0 selects the default 0.5.
	DeadlineSpread float64
}

// FlashCrowd multiplies the baseline rate curve by Multiplier during
// [Start, Start+Duration) — a surge layered on the diurnal pattern.
// Overlapping crowds compound multiplicatively.
type FlashCrowd struct {
	Start      float64
	Duration   float64
	Multiplier float64
}

// Scenario is a declarative workload specification: a diurnal
// piecewise-linear rate curve, user-class cohorts drawing from scaled
// per-stage demand distributions, and flash crowds layered on the
// baseline. It compiles into the generator interfaces (Compile) or
// streams directly into a binary trace (RecordTrace) without a
// simulator.
type Scenario struct {
	// Stages is the pipeline length; demands are exponential per stage.
	Stages int
	// MeanDemand is the baseline per-stage mean computation time.
	MeanDemand float64
	// StageScale optionally skews per-stage means (nil = balanced).
	StageScale []float64
	// Curve is the baseline rate curve; it must be non-empty with
	// strictly increasing times and non-negative rates.
	Curve []RatePoint
	// Cohorts partition arrivals into user classes; at least one.
	Cohorts []Cohort
	// Crowds are optional flash-crowd overlays.
	Crowds []FlashCrowd
	// Horizon ends the scenario: no arrivals at or after it.
	Horizon float64
	// Seed drives all sampling; equal seeds reproduce the trace exactly.
	Seed int64
	// AllowOverload skips the feasibility check that every stage's
	// offered load stays below capacity at the peak of the curve —
	// deliberately infeasible stress scenarios set it.
	AllowOverload bool
}

// Validate checks structural soundness and — unless AllowOverload —
// feasibility: the offered per-stage load ρ_j(t) = λ(t)·E[C_j] must stay
// below 1 at every breakpoint of the rate curve and every flash-crowd
// edge (λ is piecewise-linear, so per-stage load is too, and its maximum
// is attained at a breakpoint).
func (sc *Scenario) Validate() error {
	if sc.Stages < 1 {
		return fmt.Errorf("workload: scenario needs stages, got %d", sc.Stages)
	}
	if !(sc.MeanDemand > 0) {
		return fmt.Errorf("workload: scenario mean demand %v must be positive", sc.MeanDemand)
	}
	if sc.StageScale != nil && len(sc.StageScale) != sc.Stages {
		return fmt.Errorf("workload: %d stage scales for %d stages", len(sc.StageScale), sc.Stages)
	}
	for j, s := range sc.StageScale {
		if !(s > 0) {
			return fmt.Errorf("workload: stage scale[%d] = %v must be positive", j, s)
		}
	}
	if len(sc.Curve) == 0 {
		return fmt.Errorf("workload: scenario needs a rate curve")
	}
	for i, p := range sc.Curve {
		if p.Rate < 0 || math.IsNaN(p.Rate) || math.IsInf(p.Rate, 0) {
			return fmt.Errorf("workload: curve point %d rate %v invalid", i, p.Rate)
		}
		if i > 0 && p.At <= sc.Curve[i-1].At {
			return fmt.Errorf("workload: curve times must strictly increase (point %d)", i)
		}
	}
	if !(sc.Horizon > 0) {
		return fmt.Errorf("workload: scenario horizon %v must be positive", sc.Horizon)
	}
	if len(sc.Cohorts) == 0 {
		return fmt.Errorf("workload: scenario needs at least one cohort")
	}
	if len(sc.Cohorts) > maxTraceClasses {
		return fmt.Errorf("workload: %d cohorts exceed the trace format's %d classes", len(sc.Cohorts), maxTraceClasses)
	}
	shares := 0.0
	seen := map[string]bool{}
	for i, c := range sc.Cohorts {
		if c.Name == "" {
			return fmt.Errorf("workload: cohort %d needs a name", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("workload: duplicate cohort %q", c.Name)
		}
		seen[c.Name] = true
		if !(c.Share > 0) {
			return fmt.Errorf("workload: cohort %q share %v must be positive", c.Name, c.Share)
		}
		if !(c.DemandScale > 0) || !(c.Resolution > 0) {
			return fmt.Errorf("workload: cohort %q needs positive demand scale and resolution", c.Name)
		}
		if c.DeadlineSpread < 0 || c.DeadlineSpread >= 1 {
			return fmt.Errorf("workload: cohort %q deadline spread %v must be in [0, 1)", c.Name, c.DeadlineSpread)
		}
		shares += c.Share
	}
	if math.Abs(shares-1) > 1e-9 {
		return fmt.Errorf("workload: cohort shares sum to %v, want 1", shares)
	}
	for i, fc := range sc.Crowds {
		if !(fc.Duration > 0) || !(fc.Multiplier > 0) || fc.Start < 0 {
			return fmt.Errorf("workload: flash crowd %d needs non-negative start, positive duration and multiplier", i)
		}
	}
	if sc.AllowOverload {
		return nil
	}
	if load, at := sc.PeakLoad(); load >= 1 {
		return fmt.Errorf("workload: scenario infeasible: peak per-stage load %.3f ≥ 1 at t=%v (set AllowOverload for deliberate stress)", load, at)
	}
	return nil
}

// meanStageDemands returns E[C_j] across the cohort mix.
func (sc *Scenario) meanStageDemands() []float64 {
	mix := 0.0
	for _, c := range sc.Cohorts {
		mix += c.Share * c.DemandScale
	}
	means := make([]float64, sc.Stages)
	for j := range means {
		means[j] = sc.MeanDemand * mix
		if sc.StageScale != nil {
			means[j] *= sc.StageScale[j]
		}
	}
	return means
}

// baseRate evaluates the rate curve (without crowds) at t.
func (sc *Scenario) baseRate(t float64) float64 {
	c := sc.Curve
	if t <= c[0].At {
		return c[0].Rate
	}
	if t >= c[len(c)-1].At {
		return c[len(c)-1].Rate
	}
	i := sort.Search(len(c), func(k int) bool { return c[k].At > t }) - 1
	a, b := c[i], c[i+1]
	frac := (t - a.At) / (b.At - a.At)
	return a.Rate + frac*(b.Rate-a.Rate)
}

// Rate evaluates the effective arrival rate at t: the curve with every
// covering flash crowd's multiplier applied.
func (sc *Scenario) Rate(t float64) float64 {
	r := sc.baseRate(t)
	for _, fc := range sc.Crowds {
		if t >= fc.Start && t < fc.Start+fc.Duration {
			r *= fc.Multiplier
		}
	}
	return r
}

// breakpoints returns every instant where the effective rate's slope or
// level can change within [0, Horizon]: curve points, crowd edges (and
// crowd edges projected onto interior curve points), 0, and Horizon.
func (sc *Scenario) breakpoints() []float64 {
	var ts []float64
	add := func(t float64) {
		if t >= 0 && t <= sc.Horizon {
			ts = append(ts, t)
		}
	}
	add(0)
	add(sc.Horizon)
	for _, p := range sc.Curve {
		add(p.At)
	}
	for _, fc := range sc.Crowds {
		add(fc.Start)
		end := fc.Start + fc.Duration
		add(end)
		// Just inside the window, where the multiplier applies.
		add(math.Nextafter(end, 0))
		for _, p := range sc.Curve {
			if p.At > fc.Start && p.At < end {
				add(p.At)
			}
		}
	}
	sort.Float64s(ts)
	return ts
}

// MaxRate returns the peak effective arrival rate over [0, Horizon].
func (sc *Scenario) MaxRate() float64 {
	max := 0.0
	for _, t := range sc.breakpoints() {
		if r := sc.Rate(t); r > max {
			max = r
		}
	}
	return max
}

// PeakLoad returns the maximum per-stage offered load ρ_j(t) =
// λ(t)·E[C_j] over [0, Horizon] and the time it is attained at. Loads
// are piecewise-linear in t, so scanning breakpoints is exact.
func (sc *Scenario) PeakLoad() (load, at float64) {
	means := sc.meanStageDemands()
	maxMean := 0.0
	for _, m := range means {
		if m > maxMean {
			maxMean = m
		}
	}
	for _, t := range sc.breakpoints() {
		if l := sc.Rate(t) * maxMean; l > load {
			load, at = l, t
		}
	}
	return load, at
}

// ScenarioSource generates the scenario's arrivals inside a simulator
// via Poisson thinning against the peak rate. It implements des.Timer;
// one candidate event is outstanding at a time.
type ScenarioSource struct {
	sim    *des.Simulator
	sc     *Scenario
	gen    *scenarioGen
	offer  func(*task.Task)
	maxSim float64
}

// Compile validates the scenario and binds it to a simulator and sink.
// Call Start to schedule the first arrival.
func (sc *Scenario) Compile(sim *des.Simulator, offer func(*task.Task)) (*ScenarioSource, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if offer == nil {
		return nil, fmt.Errorf("workload: scenario needs an offer sink")
	}
	s := &ScenarioSource{sim: sim, sc: sc, gen: newScenarioGen(sc), offer: offer}
	return s, nil
}

// Start schedules the first arrival (if any occur before Horizon).
func (s *ScenarioSource) Start() {
	if at, ok := s.gen.next(); ok {
		s.maxSim = at
		s.sim.AtTimer(at, s)
	}
}

// Generated returns how many tasks the source has offered.
func (s *ScenarioSource) Generated() uint64 { return s.gen.count }

// Fire emits the due arrival and schedules the next one.
func (s *ScenarioSource) Fire(now des.Time) {
	s.offer(s.gen.emit(now))
	if at, ok := s.gen.next(); ok {
		s.sim.AtTimer(at, s)
	}
}

// scenarioGen is the simulator-independent sampling core shared by the
// DES source and the offline trace recorder: a nonhomogeneous Poisson
// process by thinning against the peak rate, cohort selection by share,
// and per-cohort demand/deadline sampling. Sampling order is fixed, so
// one seed yields one arrival sequence regardless of the consumer.
type scenarioGen struct {
	sc      *Scenario
	rng     *dist.RNG
	lambda  float64 // thinning envelope: peak effective rate
	clock   float64
	count   uint64
	means   []float64 // baseline per-stage means (before cohort scale)
	demand  []dist.Distribution
	dlines  []dist.Distribution // per-cohort deadline distributions
	cumul   []float64           // cumulative cohort shares
	scratch []float64
}

func newScenarioGen(sc *Scenario) *scenarioGen {
	g := &scenarioGen{
		sc:      sc,
		rng:     dist.NewRNG(sc.Seed),
		lambda:  sc.MaxRate(),
		means:   make([]float64, sc.Stages),
		demand:  make([]dist.Distribution, sc.Stages),
		scratch: make([]float64, sc.Stages),
	}
	for j := range g.means {
		g.means[j] = sc.MeanDemand
		if sc.StageScale != nil {
			g.means[j] *= sc.StageScale[j]
		}
		g.demand[j] = dist.NewExponential(g.means[j])
	}
	base := 0.0
	for _, m := range g.means {
		base += m
	}
	cum := 0.0
	for _, c := range sc.Cohorts {
		cum += c.Share
		g.cumul = append(g.cumul, cum)
		spread := c.DeadlineSpread
		if spread == 0 {
			spread = 0.5
		}
		md := c.Resolution * base * c.DemandScale
		g.dlines = append(g.dlines, dist.NewUniform(md*(1-spread), md*(1+spread)))
	}
	g.cumul[len(g.cumul)-1] = 1 // close the interval against rounding
	return g
}

// next advances the thinned Poisson clock to the next accepted arrival,
// returning false when the horizon is reached (or the rate is zero).
func (g *scenarioGen) next() (float64, bool) {
	if g.lambda <= 0 {
		return 0, false
	}
	for {
		g.clock += g.rng.ExpFloat64() / g.lambda
		if g.clock >= g.sc.Horizon {
			return 0, false
		}
		if g.rng.Float64()*g.lambda < g.sc.Rate(g.clock) {
			return g.clock, true
		}
	}
}

// emit samples the accepted arrival's cohort, demands, and deadline.
// The returned task's demand slice is freshly allocated.
func (g *scenarioGen) emit(at float64) *task.Task {
	k := g.pickCohort()
	c := &g.sc.Cohorts[k]
	for j, d := range g.demand {
		g.scratch[j] = d.Sample(g.rng) * c.DemandScale
	}
	t := task.Chain(task.ID(g.count), at, g.dlines[k].Sample(g.rng), g.scratch...)
	t.Class = c.Name
	g.count++
	return t
}

// emitRecord is emit without the task allocation: it fills demands and
// returns (cohort, deadline) for direct trace writing.
func (g *scenarioGen) emitRecord(demands []float64) (cohort int, deadline float64) {
	k := g.pickCohort()
	c := &g.sc.Cohorts[k]
	for j, d := range g.demand {
		demands[j] = d.Sample(g.rng) * c.DemandScale
	}
	g.count++
	return k, g.dlines[k].Sample(g.rng)
}

func (g *scenarioGen) pickCohort() int {
	u := g.rng.Float64()
	for k, c := range g.cumul {
		if u < c {
			return k
		}
	}
	return len(g.cumul) - 1
}

// RecordTrace streams the scenario's full arrival sequence into a binary
// trace without a simulator — the fast path for generating
// tens-of-millions-of-records stress traces. The class table is the
// cohort list in order. It returns the record count.
func (sc *Scenario) RecordTrace(w io.Writer) (uint64, error) {
	if err := sc.Validate(); err != nil {
		return 0, err
	}
	classes := make([]string, len(sc.Cohorts))
	for i, c := range sc.Cohorts {
		classes[i] = c.Name
	}
	tw, err := NewTraceWriter(w, sc.Stages, classes)
	if err != nil {
		return 0, err
	}
	g := newScenarioGen(sc)
	demands := make([]float64, sc.Stages)
	for {
		at, ok := g.next()
		if !ok {
			break
		}
		cohort, deadline := g.emitRecord(demands)
		if err := tw.Write(at, deadline, cohort, demands); err != nil {
			return 0, err
		}
	}
	if err := tw.Close(); err != nil {
		return 0, err
	}
	return tw.Count(), nil
}
