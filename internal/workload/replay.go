package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"feasregion/internal/des"
	"feasregion/internal/task"
)

// Replay is a recorded workload: explicit arrivals with deadlines and
// per-stage demands, replayable into a pipeline. It supports trace-driven
// evaluation against production request logs.
type Replay struct {
	Tasks []*task.Task
}

// ParseReplay reads a workload trace in CSV form:
//
//	arrival,deadline,c1,c2,...,cN
//
// A header row is permitted (detected by a non-numeric first field).
// Every row must carry the same number of demand columns. Tasks are
// sorted by arrival time; IDs are assigned by position.
func ParseReplay(r io.Reader) (*Replay, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated manually for better errors
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	rep := &Replay{}
	stages := -1
	for i, row := range rows {
		if len(row) == 0 {
			continue
		}
		if _, err := strconv.ParseFloat(row[0], 64); err != nil && i == 0 {
			continue // header
		}
		if len(row) < 3 {
			return nil, fmt.Errorf("workload: trace row %d has %d fields, need arrival,deadline,demands...", i+1, len(row))
		}
		if stages == -1 {
			stages = len(row) - 2
		} else if len(row)-2 != stages {
			return nil, fmt.Errorf("workload: trace row %d has %d demand columns, want %d", i+1, len(row)-2, stages)
		}
		vals := make([]float64, len(row))
		for k, cell := range row {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("workload: trace row %d field %d: %w", i+1, k+1, err)
			}
			vals[k] = v
		}
		if vals[1] <= 0 {
			return nil, fmt.Errorf("workload: trace row %d: deadline %v must be positive", i+1, vals[1])
		}
		for _, c := range vals[2:] {
			if c < 0 {
				return nil, fmt.Errorf("workload: trace row %d: negative demand", i+1)
			}
		}
		rep.Tasks = append(rep.Tasks, task.Chain(0, vals[0], vals[1], vals[2:]...))
	}
	if len(rep.Tasks) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	sort.SliceStable(rep.Tasks, func(a, b int) bool { return rep.Tasks[a].Arrival < rep.Tasks[b].Arrival })
	for i, t := range rep.Tasks {
		t.ID = task.ID(i)
	}
	return rep, nil
}

// Stages returns the number of demand columns in the trace.
func (r *Replay) Stages() int {
	if len(r.Tasks) == 0 {
		return 0
	}
	return len(r.Tasks[0].Subtasks)
}

// Horizon returns the last arrival time.
func (r *Replay) Horizon() float64 {
	if len(r.Tasks) == 0 {
		return 0
	}
	return r.Tasks[len(r.Tasks)-1].Arrival
}

// Schedule replays every arrival into offer at its recorded time.
func (r *Replay) Schedule(sim *des.Simulator, offer func(*task.Task)) {
	for _, t := range r.Tasks {
		t := t
		sim.At(t.Arrival, func() { offer(t) })
	}
}

// WriteCSV writes the replay in the format ParseReplay reads (with a
// header), so generated workloads can be saved and replayed.
func (r *Replay) WriteCSV(w io.Writer) error {
	n := r.Stages()
	header := "arrival,deadline"
	for j := 1; j <= n; j++ {
		header += fmt.Sprintf(",c%d", j)
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, t := range r.Tasks {
		if _, err := fmt.Fprintf(w, "%.17g,%.17g", t.Arrival, t.Deadline); err != nil {
			return err
		}
		for j := 0; j < n; j++ {
			if _, err := fmt.Fprintf(w, ",%.17g", t.StageDemand(j)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// RecordReplay captures a generated workload (e.g. from NewSource) into
// a Replay by interposing on the offer callback.
func RecordReplay(offer func(*task.Task)) (*Replay, func(*task.Task)) {
	rep := &Replay{}
	return rep, func(t *task.Task) {
		rep.Tasks = append(rep.Tasks, t)
		if offer != nil {
			offer(t)
		}
	}
}
