package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"feasregion/internal/des"
	"feasregion/internal/task"
)

// Replay is a recorded workload: explicit arrivals with deadlines and
// per-stage demands, replayable into a pipeline. It supports trace-driven
// evaluation against production request logs.
type Replay struct {
	Tasks []*task.Task
}

// ParseReplay reads a workload trace in CSV form:
//
//	arrival,deadline,c1,c2,...,cN
//
// A header row is permitted (detected by a non-numeric first field).
// Every row must carry the same number of demand columns. Tasks are
// sorted by arrival time; IDs are assigned by position.
//
// Rows are streamed one at a time (the reader never materializes the
// file), so parsing memory is O(row) plus the tasks themselves; to avoid
// even that, convert large CSVs to the binary trace format with
// ImportCSV and replay them with a Replayer.
func ParseReplay(r io.Reader) (*Replay, error) {
	rep := &Replay{}
	err := streamCSVRows(r, func(_ int, arrival, deadline float64, demands []float64) error {
		rep.Tasks = append(rep.Tasks, task.Chain(0, arrival, deadline, demands...))
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(rep.Tasks) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	sort.SliceStable(rep.Tasks, func(a, b int) bool { return rep.Tasks[a].Arrival < rep.Tasks[b].Arrival })
	for i, t := range rep.Tasks {
		t.ID = task.ID(i)
	}
	return rep, nil
}

// streamCSVRows parses the CSV trace format row by row, reusing the
// record and demand buffers, and hands each validated data row to fn.
// fn must not retain demands across calls. The row index passed to fn
// counts all CSV rows including any header.
func streamCSVRows(r io.Reader, fn func(row int, arrival, deadline float64, demands []float64) error) error {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated manually for better errors
	cr.ReuseRecord = true
	stages := -1
	var demands []float64
	for i := 0; ; i++ {
		row, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("workload: reading trace: %w", err)
		}
		if len(row) == 0 {
			continue
		}
		if _, err := strconv.ParseFloat(row[0], 64); err != nil && i == 0 {
			continue // header
		}
		if len(row) < 3 {
			return fmt.Errorf("workload: trace row %d has %d fields, need arrival,deadline,demands...", i+1, len(row))
		}
		if stages == -1 {
			stages = len(row) - 2
		} else if len(row)-2 != stages {
			return fmt.Errorf("workload: trace row %d has %d demand columns, want %d", i+1, len(row)-2, stages)
		}
		arrival, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return fmt.Errorf("workload: trace row %d field 1: %w", i+1, err)
		}
		deadline, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return fmt.Errorf("workload: trace row %d field 2: %w", i+1, err)
		}
		demands = demands[:0]
		for k, cell := range row[2:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return fmt.Errorf("workload: trace row %d field %d: %w", i+1, k+3, err)
			}
			demands = append(demands, v)
		}
		if deadline <= 0 {
			return fmt.Errorf("workload: trace row %d: deadline %v must be positive", i+1, deadline)
		}
		for _, c := range demands {
			if c < 0 {
				return fmt.Errorf("workload: trace row %d: negative demand", i+1)
			}
		}
		if err := fn(i, arrival, deadline, demands); err != nil {
			return err
		}
	}
}

// Stages returns the number of demand columns in the trace.
func (r *Replay) Stages() int {
	if len(r.Tasks) == 0 {
		return 0
	}
	return len(r.Tasks[0].Subtasks)
}

// Horizon returns the last arrival time.
func (r *Replay) Horizon() float64 {
	if len(r.Tasks) == 0 {
		return 0
	}
	return r.Tasks[len(r.Tasks)-1].Arrival
}

// Schedule replays every arrival into offer at its recorded time.
func (r *Replay) Schedule(sim *des.Simulator, offer func(*task.Task)) {
	for _, t := range r.Tasks {
		t := t
		sim.At(t.Arrival, func() { offer(t) })
	}
}

// WriteCSV writes the replay in the format ParseReplay reads (with a
// header), so generated workloads can be saved and replayed.
func (r *Replay) WriteCSV(w io.Writer) error {
	n := r.Stages()
	header := "arrival,deadline"
	for j := 1; j <= n; j++ {
		header += fmt.Sprintf(",c%d", j)
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, t := range r.Tasks {
		if _, err := fmt.Fprintf(w, "%.17g,%.17g", t.Arrival, t.Deadline); err != nil {
			return err
		}
		for j := 0; j < n; j++ {
			if _, err := fmt.Fprintf(w, ",%.17g", t.StageDemand(j)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// RecordReplay captures a generated workload (e.g. from NewSource) into
// a Replay by interposing on the offer callback.
func RecordReplay(offer func(*task.Task)) (*Replay, func(*task.Task)) {
	rep := &Replay{}
	return rep, func(t *task.Task) {
		rep.Tasks = append(rep.Tasks, t)
		if offer != nil {
			offer(t)
		}
	}
}
