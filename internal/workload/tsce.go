package workload

import (
	"feasregion/internal/des"
	"feasregion/internal/dist"
	"feasregion/internal/task"
)

// TSCE models the Table 1 mission execution system (paper §5). Times are
// in seconds. Stage 1 = tracking processors, stage 2 = distributors,
// stage 3 = console displays.
//
// Following the paper's own modeling choice for stage 3 ("different tasks
// have different consoles ... we do not add their utilizations, but take
// the largest one"), only the largest stage-3 consumer (UAV video) runs
// on the shared stage-3 resource; Weapon Detection's display and Weapon
// Targeting's weapon release execute on their private consoles/hardware
// outside the shared pipeline, so their stage-3 demands are zero here.
type TSCE struct {
	// WeaponDetection is an aperiodic hard real-time threat assessment:
	// D = 500 ms, C = (100 ms, 65 ms, —). Simulated sporadically at its
	// worst-case rate (one instance per deadline window).
	WeaponDetection PeriodicStream
	// WeaponTargeting runs at P = D = 50 ms with C = (5 ms, 5 ms, —).
	WeaponTargeting PeriodicStream
	// UAVVideo runs at P = D = 500 ms with C = (50 ms, 10 ms, 50 ms).
	UAVVideo PeriodicStream
	// TrackDistribution packages track data each second for the 10
	// consoles: C = (—, 2 ms × 10, 20 ms) at P = D = 1 s. It is part of
	// the Target Tracking service but independent of the track count.
	TrackDistribution PeriodicStream
	// TrackUpdatePeriod/Deadline/Demand describe one per-track update
	// task: C1 = 1 ms at P = D = 1 s.
	TrackUpdatePeriod   float64
	TrackUpdateDeadline float64
	TrackUpdateDemand   float64
	// AdmissionHold is the §5 wait-queue allowance (200 ms).
	AdmissionHold float64
}

// NewTSCE returns the Table 1 scenario with the paper's parameters.
func NewTSCE() TSCE {
	return TSCE{
		WeaponDetection: PeriodicStream{
			Name: "weapon-detection", Period: 0.5, Deadline: 0.5,
			Demands: []float64{0.100, 0.065, 0}, Importance: 10,
		},
		WeaponTargeting: PeriodicStream{
			Name: "weapon-targeting", Period: 0.05, Deadline: 0.05,
			Demands: []float64{0.005, 0.005, 0}, Importance: 9,
		},
		UAVVideo: PeriodicStream{
			Name: "uav-video", Period: 0.5, Deadline: 0.5,
			Demands: []float64{0.050, 0.010, 0.050}, Importance: 5,
		},
		TrackDistribution: PeriodicStream{
			Name: "track-distribution", Period: 1, Deadline: 1,
			Demands: []float64{0, 0.020, 0.020}, Importance: 6,
		},
		TrackUpdatePeriod:   1,
		TrackUpdateDeadline: 1,
		TrackUpdateDemand:   0.001,
		AdmissionHold:       0.2,
	}
}

// ReservedStreams returns the pre-certified critical streams whose
// synthetic utilization is reserved on each stage.
func (c TSCE) ReservedStreams() []PeriodicStream {
	return []PeriodicStream{c.WeaponDetection, c.WeaponTargeting, c.UAVVideo}
}

// ReservedUtilization computes the per-stage reserved synthetic
// utilization Σ C_j/D over the critical streams — the paper's
// (0.40, 0.25, 0.10).
func (c TSCE) ReservedUtilization() []float64 {
	res := make([]float64, 3)
	for _, s := range c.ReservedStreams() {
		for j, u := range s.Utilization() {
			res[j] += u
		}
	}
	return res
}

// ScheduleReserved injects the critical periodic streams (bypassing
// admission — their capacity is the reserved floor) until horizon.
func (c TSCE) ScheduleReserved(sim *des.Simulator, rng *dist.RNG, horizon des.Time, nextID *task.ID, inject func(*task.Task)) {
	for _, s := range c.ReservedStreams() {
		s.Schedule(sim, rng, horizon, nextID, inject)
	}
}

// ScheduleTracking offers the dynamic Target Tracking workload for the
// given number of tracks: the per-period distribution/display task plus
// one update task per track, with uniformly random phases so track
// updates spread across the period.
func (c TSCE) ScheduleTracking(sim *des.Simulator, rng *dist.RNG, tracks int, horizon des.Time, nextID *task.ID, offer func(*task.Task)) {
	c.TrackDistribution.Schedule(sim, rng, horizon, nextID, offer)
	for i := 0; i < tracks; i++ {
		stream := PeriodicStream{
			Name:       "track-update",
			Period:     c.TrackUpdatePeriod,
			Phase:      rng.Float64() * c.TrackUpdatePeriod,
			Deadline:   c.TrackUpdateDeadline,
			Demands:    []float64{c.TrackUpdateDemand, 0, 0},
			Importance: 3,
		}
		stream.Schedule(sim, rng, horizon, nextID, offer)
	}
}
