package workload

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"feasregion/internal/task"
)

// Binary trace format v1 ("FRTRACE"), little-endian throughout:
//
//	offset  size  field
//	0       7     magic "FRTRACE"
//	7       1     version (1)
//	8       2     stages     uint16 (≥ 1)
//	10      2     classCount uint16
//	12      4     reserved (zero)
//	16      8     count      uint64 (0 = unknown; backpatched when the
//	              writer's sink is seekable)
//	24      —     class table: classCount × (uint16 length + UTF-8 bytes)
//
// followed by count fixed-size records:
//
//	arrival  float64   absolute arrival time, nondecreasing across records
//	deadline float64   relative end-to-end deadline, positive and finite
//	class    uint8     index into the class table; 0xFF = unclassed
//	demands  stages × float64   per-stage computation times, ≥ 0, finite
//
// The fixed record size (17 + 8·stages bytes) makes the format streamable
// in both directions with O(1) memory and makes the record count of an
// unlabelled trace recoverable from the file size.

// TraceMagic is the v1 binary trace file magic.
const TraceMagic = "FRTRACE"

// TraceVersion is the format version this package reads and writes.
const TraceVersion = 1

// TraceNoClass is the record class byte meaning "no class".
const TraceNoClass = 0xFF

const traceHeaderSize = 24

// maxTraceClasses is the densest class table the record's uint8 class
// field can address (0xFF is reserved).
const maxTraceClasses = 255

// TraceWriter streams workload records into the v1 binary format. It
// buffers internally; Close flushes and, when the underlying writer is
// an io.WriteSeeker (e.g. *os.File), backpatches the record count into
// the header.
type TraceWriter struct {
	w       *bufio.Writer
	raw     io.Writer
	stages  int
	classes map[string]int
	count   uint64
	lastAt  float64
	rec     []byte
	err     error
}

// NewTraceWriter writes a v1 header for the given stage count and class
// table and returns a writer for the records. classes may be nil for an
// unclassed trace; at most 255 classes are addressable.
func NewTraceWriter(w io.Writer, stages int, classes []string) (*TraceWriter, error) {
	if stages < 1 || stages > math.MaxUint16 {
		return nil, fmt.Errorf("workload: trace stages %d out of range [1, %d]", stages, math.MaxUint16)
	}
	if len(classes) > maxTraceClasses {
		return nil, fmt.Errorf("workload: %d trace classes exceed the format's %d", len(classes), maxTraceClasses)
	}
	tw := &TraceWriter{
		w:       bufio.NewWriterSize(w, 1<<16),
		raw:     w,
		stages:  stages,
		classes: make(map[string]int, len(classes)),
		lastAt:  math.Inf(-1),
		rec:     make([]byte, 17+8*stages),
	}
	var hdr [traceHeaderSize]byte
	copy(hdr[:7], TraceMagic)
	hdr[7] = TraceVersion
	binary.LittleEndian.PutUint16(hdr[8:10], uint16(stages))
	binary.LittleEndian.PutUint16(hdr[10:12], uint16(len(classes)))
	// hdr[12:16] reserved; hdr[16:24] count, backpatched at Close.
	if _, err := tw.w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("workload: writing trace header: %w", err)
	}
	var lb [2]byte
	for i, c := range classes {
		if _, dup := tw.classes[c]; dup {
			return nil, fmt.Errorf("workload: duplicate trace class %q", c)
		}
		if len(c) > math.MaxUint16 {
			return nil, fmt.Errorf("workload: trace class name %d bytes long", len(c))
		}
		tw.classes[c] = i
		binary.LittleEndian.PutUint16(lb[:], uint16(len(c)))
		if _, err := tw.w.Write(lb[:]); err != nil {
			return nil, err
		}
		if _, err := tw.w.WriteString(c); err != nil {
			return nil, err
		}
	}
	return tw, nil
}

// Stages returns the per-record demand column count.
func (tw *TraceWriter) Stages() int { return tw.stages }

// Count returns the number of records written so far.
func (tw *TraceWriter) Count() uint64 { return tw.count }

// Write appends one record. class is an index into the writer's class
// table, or -1 for unclassed. Arrivals must be nondecreasing, deadlines
// positive and finite, demands non-negative and finite, with exactly the
// header's stage count.
func (tw *TraceWriter) Write(arrival, deadline float64, class int, demands []float64) error {
	if tw.err != nil {
		return tw.err
	}
	if len(demands) != tw.stages {
		return tw.fail(fmt.Errorf("workload: trace record %d has %d demands, want %d", tw.count, len(demands), tw.stages))
	}
	if math.IsNaN(arrival) || math.IsInf(arrival, 0) {
		return tw.fail(fmt.Errorf("workload: trace record %d: non-finite arrival %v", tw.count, arrival))
	}
	if arrival < tw.lastAt {
		return tw.fail(fmt.Errorf("workload: trace record %d: arrival %v before previous %v (records must be time-ordered)", tw.count, arrival, tw.lastAt))
	}
	if !(deadline > 0) || math.IsInf(deadline, 0) {
		return tw.fail(fmt.Errorf("workload: trace record %d: deadline %v must be positive and finite", tw.count, deadline))
	}
	if class != -1 && (class < 0 || class >= len(tw.classes)) {
		return tw.fail(fmt.Errorf("workload: trace record %d: class %d outside table of %d", tw.count, class, len(tw.classes)))
	}
	b := tw.rec
	binary.LittleEndian.PutUint64(b[0:8], math.Float64bits(arrival))
	binary.LittleEndian.PutUint64(b[8:16], math.Float64bits(deadline))
	if class == -1 {
		b[16] = TraceNoClass
	} else {
		b[16] = byte(class)
	}
	for j, c := range demands {
		if !(c >= 0) || math.IsInf(c, 0) {
			return tw.fail(fmt.Errorf("workload: trace record %d: demand[%d] = %v must be non-negative and finite", tw.count, j, c))
		}
		binary.LittleEndian.PutUint64(b[17+8*j:], math.Float64bits(c))
	}
	if _, err := tw.w.Write(b); err != nil {
		return tw.fail(fmt.Errorf("workload: writing trace record: %w", err))
	}
	tw.lastAt = arrival
	tw.count++
	return nil
}

// WriteTask appends a chain task as a record, resolving its Class via
// the writer's class table (unknown or empty class → unclassed).
func (tw *TraceWriter) WriteTask(t *task.Task) error {
	if tw.err != nil {
		return tw.err
	}
	class := -1
	if t.Class != "" {
		if i, ok := tw.classes[t.Class]; ok {
			class = i
		}
	}
	demands := make([]float64, 0, 8)
	for _, s := range t.Subtasks {
		demands = append(demands, s.Demand)
	}
	return tw.Write(t.Arrival, t.Deadline, class, demands)
}

func (tw *TraceWriter) fail(err error) error {
	tw.err = err
	return err
}

// Close flushes buffered records and backpatches the header's record
// count when the sink supports seeking. It does not close the sink.
func (tw *TraceWriter) Close() error {
	if tw.err != nil {
		return tw.err
	}
	if err := tw.w.Flush(); err != nil {
		return tw.fail(fmt.Errorf("workload: flushing trace: %w", err))
	}
	ws, ok := tw.raw.(io.WriteSeeker)
	if !ok {
		return nil // count stays 0 in the header; readers fall back to EOF
	}
	var cb [8]byte
	binary.LittleEndian.PutUint64(cb[:], tw.count)
	if _, err := ws.Seek(16, io.SeekStart); err != nil {
		return tw.fail(err)
	}
	if _, err := ws.Write(cb[:]); err != nil {
		return tw.fail(err)
	}
	if _, err := ws.Seek(0, io.SeekEnd); err != nil {
		return tw.fail(err)
	}
	return nil
}

// TraceRecord is one decoded trace record. Demands is reused across
// Next calls; copy it to retain.
type TraceRecord struct {
	Arrival  float64
	Deadline float64
	Class    int // index into Classes(), or -1
	Demands  []float64
}

// TraceReader streams records from a v1 binary trace with O(1) memory.
type TraceReader struct {
	r       *bufio.Reader
	stages  int
	classes []string
	count   uint64 // header count; 0 when unknown
	read    uint64
	lastAt  float64
	rec     []byte
}

// OpenTrace validates the header and class table of a v1 binary trace
// and positions the reader at the first record.
func OpenTrace(r io.Reader) (*TraceReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [traceHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("workload: reading trace header: %w", err)
	}
	if string(hdr[:7]) != TraceMagic {
		return nil, fmt.Errorf("workload: not a trace file (magic %q)", hdr[:7])
	}
	if hdr[7] != TraceVersion {
		return nil, fmt.Errorf("workload: trace version %d, this build reads %d", hdr[7], TraceVersion)
	}
	stages := int(binary.LittleEndian.Uint16(hdr[8:10]))
	if stages < 1 {
		return nil, fmt.Errorf("workload: trace declares %d stages", stages)
	}
	nclasses := int(binary.LittleEndian.Uint16(hdr[10:12]))
	if nclasses > maxTraceClasses {
		return nil, fmt.Errorf("workload: trace declares %d classes, format max %d", nclasses, maxTraceClasses)
	}
	count := binary.LittleEndian.Uint64(hdr[16:24])
	tr := &TraceReader{
		r:      br,
		stages: stages,
		count:  count,
		lastAt: math.Inf(-1),
		rec:    make([]byte, 17+8*stages),
	}
	var lb [2]byte
	for i := 0; i < nclasses; i++ {
		if _, err := io.ReadFull(br, lb[:]); err != nil {
			return nil, fmt.Errorf("workload: reading trace class table: %w", err)
		}
		name := make([]byte, binary.LittleEndian.Uint16(lb[:]))
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("workload: reading trace class table: %w", err)
		}
		tr.classes = append(tr.classes, string(name))
	}
	return tr, nil
}

// Stages returns the per-record demand column count.
func (tr *TraceReader) Stages() int { return tr.stages }

// Classes returns the trace's class table (aliased; do not mutate).
func (tr *TraceReader) Classes() []string { return tr.classes }

// Count returns the header's record count, or 0 when the trace was
// written to a non-seekable sink and the count is unknown.
func (tr *TraceReader) Count() uint64 { return tr.count }

// Records returns the number of records decoded so far.
func (tr *TraceReader) Records() uint64 { return tr.read }

// Next decodes the next record into rec, reusing rec.Demands. It returns
// io.EOF (and leaves rec unchanged) at a clean end of trace, and a
// descriptive error on truncation or corruption: class out of range,
// non-positive deadline, negative demand, or time-travelling arrivals.
func (tr *TraceReader) Next(rec *TraceRecord) error {
	if _, err := io.ReadFull(tr.r, tr.rec); err != nil {
		if err == io.EOF {
			if tr.count != 0 && tr.read != tr.count {
				return fmt.Errorf("workload: trace truncated: header declares %d records, found %d", tr.count, tr.read)
			}
			return io.EOF
		}
		return fmt.Errorf("workload: trace record %d truncated: %w", tr.read, err)
	}
	arrival := math.Float64frombits(binary.LittleEndian.Uint64(tr.rec[0:8]))
	deadline := math.Float64frombits(binary.LittleEndian.Uint64(tr.rec[8:16]))
	classByte := tr.rec[16]
	if math.IsNaN(arrival) || math.IsInf(arrival, 0) {
		return fmt.Errorf("workload: trace record %d: non-finite arrival", tr.read)
	}
	if arrival < tr.lastAt {
		return fmt.Errorf("workload: trace record %d: arrival %v before previous %v", tr.read, arrival, tr.lastAt)
	}
	if !(deadline > 0) || math.IsInf(deadline, 0) {
		return fmt.Errorf("workload: trace record %d: invalid deadline %v", tr.read, deadline)
	}
	class := -1
	if classByte != TraceNoClass {
		if int(classByte) >= len(tr.classes) {
			return fmt.Errorf("workload: trace record %d: class %d outside table of %d", tr.read, classByte, len(tr.classes))
		}
		class = int(classByte)
	}
	if cap(rec.Demands) < tr.stages {
		rec.Demands = make([]float64, tr.stages)
	}
	rec.Demands = rec.Demands[:tr.stages]
	for j := 0; j < tr.stages; j++ {
		c := math.Float64frombits(binary.LittleEndian.Uint64(tr.rec[17+8*j:]))
		if !(c >= 0) || math.IsInf(c, 0) {
			return fmt.Errorf("workload: trace record %d: invalid demand[%d] %v", tr.read, j, c)
		}
		rec.Demands[j] = c
	}
	rec.Arrival, rec.Deadline, rec.Class = arrival, deadline, class
	tr.lastAt = arrival
	tr.read++
	return nil
}

// ImportCSV streams a CSV trace (the ParseReplay format) into the binary
// format with O(row) memory. Rows must already be ordered by arrival —
// unlike ParseReplay, the importer never buffers the file to sort it.
// It returns the record count written.
func ImportCSV(r io.Reader, w io.Writer) (uint64, error) {
	var tw *TraceWriter
	err := streamCSVRows(r, func(_ int, arrival, deadline float64, demands []float64) error {
		if tw == nil {
			var err error
			if tw, err = NewTraceWriter(w, len(demands), nil); err != nil {
				return err
			}
		}
		return tw.Write(arrival, deadline, -1, demands)
	})
	if err != nil {
		return 0, err
	}
	if tw == nil {
		return 0, fmt.Errorf("workload: empty trace")
	}
	if err := tw.Close(); err != nil {
		return 0, err
	}
	return tw.Count(), nil
}

// WriteTrace saves the replay in the binary trace format, deriving the
// class table from the tasks' Class labels in first-seen order. It
// returns the record count written.
func (r *Replay) WriteTrace(w io.Writer) (uint64, error) {
	if len(r.Tasks) == 0 {
		return 0, fmt.Errorf("workload: empty replay")
	}
	var classes []string
	seen := map[string]bool{}
	for _, t := range r.Tasks {
		if t.Class != "" && !seen[t.Class] {
			seen[t.Class] = true
			classes = append(classes, t.Class)
		}
	}
	tw, err := NewTraceWriter(w, r.Stages(), classes)
	if err != nil {
		return 0, err
	}
	for _, t := range r.Tasks {
		if err := tw.WriteTask(t); err != nil {
			return 0, err
		}
	}
	if err := tw.Close(); err != nil {
		return 0, err
	}
	return tw.Count(), nil
}

// ReadTrace materializes a binary trace as a Replay (task IDs assigned
// by position, classes resolved from the table). Intended for small
// traces; for tens of millions of records drive a Replayer instead.
func ReadTrace(r io.Reader) (*Replay, error) {
	tr, err := OpenTrace(r)
	if err != nil {
		return nil, err
	}
	rep := &Replay{}
	var rec TraceRecord
	for {
		if err := tr.Next(&rec); err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		t := task.Chain(task.ID(len(rep.Tasks)), rec.Arrival, rec.Deadline, rec.Demands...)
		if rec.Class >= 0 {
			t.Class = tr.classes[rec.Class]
		}
		rep.Tasks = append(rep.Tasks, t)
	}
	if len(rep.Tasks) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	return rep, nil
}
