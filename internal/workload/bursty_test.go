package workload

import (
	"math"
	"testing"

	"feasregion/internal/des"
	"feasregion/internal/task"
)

func TestBurstyPreservesMeanRate(t *testing.T) {
	spec := BurstySpec{
		Pipeline:   PipelineSpec{Stages: 1, Load: 1.0, MeanDemand: 1, Resolution: 50},
		Burstiness: 5,
		MeanOn:     20,
	}
	sim := des.New()
	count := 0
	src := NewBurstySource(sim, spec, 7, 50_000, func(*task.Task) { count++ })
	src.Start()
	sim.Run()
	// λ = 1, horizon 50k: expect ≈50k arrivals (±10% — burstiness adds
	// variance).
	if count < 42_000 || count > 58_000 {
		t.Fatalf("bursty source generated %d arrivals, want ≈50000", count)
	}
}

func TestBurstyIsActuallyBursty(t *testing.T) {
	spec := BurstySpec{
		Pipeline:   PipelineSpec{Stages: 1, Load: 1.0, MeanDemand: 1, Resolution: 50},
		Burstiness: 8,
		MeanOn:     25,
	}
	sim := des.New()
	var arrivals []float64
	src := NewBurstySource(sim, spec, 7, 20_000, func(tk *task.Task) { arrivals = append(arrivals, tk.Arrival) })
	src.Start()
	sim.Run()

	// Index of dispersion of counts in windows of 10 time units: Poisson
	// gives ≈1, an 8x on-off process far more.
	const window = 10.0
	counts := map[int]int{}
	for _, a := range arrivals {
		counts[int(a/window)]++
	}
	n := int(20_000 / window)
	mean := float64(len(arrivals)) / float64(n)
	varsum := 0.0
	for i := 0; i < n; i++ {
		d := float64(counts[i]) - mean
		varsum += d * d
	}
	dispersion := varsum / float64(n) / mean
	if dispersion < 3 {
		t.Fatalf("index of dispersion %.2f; expected clearly super-Poissonian (> 3)", dispersion)
	}
}

func TestBurstyOffFractionMatches(t *testing.T) {
	spec := BurstySpec{
		Pipeline:   PipelineSpec{Stages: 1, Load: 1.0, MeanDemand: 1, Resolution: 50},
		Burstiness: 4,
		MeanOn:     10,
	}
	if got := spec.MeanOff(); math.Abs(got-30) > 1e-12 {
		t.Fatalf("MeanOff = %v, want 30 (on-fraction 1/4)", got)
	}
}

func TestBurstyValidation(t *testing.T) {
	base := PipelineSpec{Stages: 1, Load: 1, MeanDemand: 1, Resolution: 10}
	for _, spec := range []BurstySpec{
		{Pipeline: base, Burstiness: 1, MeanOn: 1},
		{Pipeline: base, Burstiness: 0.5, MeanOn: 1},
		{Pipeline: base, Burstiness: 2, MeanOn: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("spec %+v: expected panic", spec)
				}
			}()
			sim := des.New()
			NewBurstySource(sim, spec, 1, 10, func(*task.Task) {})
		}()
	}
}

func TestBurstyRespectsHorizon(t *testing.T) {
	spec := BurstySpec{
		Pipeline:   PipelineSpec{Stages: 1, Load: 2, MeanDemand: 1, Resolution: 10},
		Burstiness: 3,
		MeanOn:     5,
	}
	sim := des.New()
	last := 0.0
	src := NewBurstySource(sim, spec, 3, 100, func(tk *task.Task) { last = tk.Arrival })
	src.Start()
	sim.Run()
	if last > 100 {
		t.Fatalf("arrival at %v past horizon", last)
	}
}
