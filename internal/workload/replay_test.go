package workload

import (
	"strings"
	"testing"

	"feasregion/internal/des"
	"feasregion/internal/task"
)

const sampleTrace = `arrival,deadline,c1,c2
0.5,10,1,2
0.1,8,0.5,0.5
2.0,12,3,1
`

func TestParseReplay(t *testing.T) {
	rep, err := ParseReplay(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tasks) != 3 || rep.Stages() != 2 {
		t.Fatalf("parsed %d tasks, %d stages", len(rep.Tasks), rep.Stages())
	}
	// Sorted by arrival, IDs positional.
	if rep.Tasks[0].Arrival != 0.1 || rep.Tasks[0].ID != 0 {
		t.Fatalf("first task %+v", rep.Tasks[0])
	}
	if rep.Tasks[2].Arrival != 2.0 || rep.Tasks[2].StageDemand(0) != 3 {
		t.Fatalf("last task %+v", rep.Tasks[2])
	}
	if rep.Horizon() != 2.0 {
		t.Fatalf("horizon %v", rep.Horizon())
	}
}

func TestParseReplayWithoutHeader(t *testing.T) {
	rep, err := ParseReplay(strings.NewReader("1,5,0.5\n2,5,0.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tasks) != 2 || rep.Stages() != 1 {
		t.Fatalf("parsed %+v", rep)
	}
}

func TestParseReplayErrors(t *testing.T) {
	tests := []struct {
		name, trace string
	}{
		{"empty", ""},
		{"header only", "arrival,deadline,c1\n"},
		{"too few fields", "1,5\n"},
		{"ragged demands", "1,5,1\n2,5,1,2\n"},
		{"bad number", "1,5,xyz\n"},
		{"zero deadline", "1,0,1\n"},
		{"negative demand", "1,5,-1\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseReplay(strings.NewReader(tt.trace)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestReplaySchedule(t *testing.T) {
	rep, err := ParseReplay(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	sim := des.New()
	var arrivals []float64
	rep.Schedule(sim, func(tk *task.Task) { arrivals = append(arrivals, tk.Arrival) })
	sim.Run()
	want := []float64{0.1, 0.5, 2.0}
	if len(arrivals) != 3 {
		t.Fatalf("arrivals %v", arrivals)
	}
	for i := range want {
		if arrivals[i] != want[i] {
			t.Fatalf("arrivals %v, want %v", arrivals, want)
		}
	}
}

func TestReplayRoundTrip(t *testing.T) {
	// Generate -> record -> write -> parse -> identical tasks.
	spec := PipelineSpec{Stages: 2, Load: 1, MeanDemand: 1, Resolution: 20}
	sim := des.New()
	rep, sink := RecordReplay(nil)
	src := NewSource(sim, spec, 5, 100, sink)
	src.Start()
	sim.Run()
	if len(rep.Tasks) == 0 {
		t.Fatal("nothing recorded")
	}

	var b strings.Builder
	if err := rep.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	back, err := ParseReplay(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Tasks) != len(rep.Tasks) {
		t.Fatalf("round trip count %d != %d", len(back.Tasks), len(rep.Tasks))
	}
	for i := range rep.Tasks {
		a, b := rep.Tasks[i], back.Tasks[i]
		if a.Arrival != b.Arrival || a.Deadline != b.Deadline {
			t.Fatalf("task %d header mismatch: %+v vs %+v", i, a, b)
		}
		for j := 0; j < 2; j++ {
			if a.StageDemand(j) != b.StageDemand(j) {
				t.Fatalf("task %d stage %d demand %v vs %v", i, j, a.StageDemand(j), b.StageDemand(j))
			}
		}
	}
}

func TestRecordReplayForwards(t *testing.T) {
	forwarded := 0
	rep, sink := RecordReplay(func(*task.Task) { forwarded++ })
	sink(task.Chain(1, 0, 1, 0.5))
	if forwarded != 1 || len(rep.Tasks) != 1 {
		t.Fatalf("forwarded %d, recorded %d", forwarded, len(rep.Tasks))
	}
}
