package workload

import (
	"fmt"
	"io"
	"math"

	"feasregion/internal/des"
	"feasregion/internal/task"
)

// ReplayOptions are the stress knobs that turn one recorded trace into a
// sweep of load levels.
type ReplayOptions struct {
	// TimeCompress > 1 plays the trace c× faster end to end: arrival
	// times AND deadlines are divided by c, so the same work arrives in
	// less time with proportionally tighter deadlines — a uniform
	// speed-up of the recorded world.
	TimeCompress float64
	// RateMultiplier > 1 multiplies the offered arrival rate by m by
	// dividing arrival times only; deadlines (and demands) are kept, so
	// the load rises while each task's own requirements stay as recorded.
	RateMultiplier float64
	// Limit stops the replay after this many records; 0 replays all.
	Limit uint64
	// FirstID is the task ID assigned to the first record; subsequent
	// records count up from it.
	FirstID task.ID
	// ReuseTask makes the replayer mutate and re-offer a single Task
	// value instead of allocating one per record — zero steady-state
	// allocations. Only safe when the sink consumes the task
	// synchronously and does not retain it (admission testing does not;
	// pipeline injection does — leave this false there).
	ReuseTask bool
}

// Replayer streams a binary trace through a simulator, offering each
// record at its (scaled) recorded arrival time. Unlike Replay.Schedule,
// which pre-schedules every arrival, the replayer keeps exactly one
// pending arrival event and reads the next record when it fires —
// O(1) memory for traces of any length. It implements des.Timer.
type Replayer struct {
	sim   *des.Simulator
	tr    *TraceReader
	offer func(*task.Task)
	opts  ReplayOptions

	timeDiv float64 // combined divisor on arrival times
	rec     TraceRecord
	pending bool // rec holds a record not yet offered
	nextID  task.ID
	reused  *task.Task
	count   uint64
	err     error
}

// NewReplayer wraps an open trace reader. The replayer takes over the
// reader: do not call Next on it afterwards.
func NewReplayer(sim *des.Simulator, tr *TraceReader, opts ReplayOptions, offer func(*task.Task)) (*Replayer, error) {
	if offer == nil {
		return nil, fmt.Errorf("workload: replayer needs an offer sink")
	}
	if opts.TimeCompress == 0 {
		opts.TimeCompress = 1
	}
	if opts.RateMultiplier == 0 {
		opts.RateMultiplier = 1
	}
	if !(opts.TimeCompress > 0) || !(opts.RateMultiplier > 0) ||
		math.IsInf(opts.TimeCompress, 0) || math.IsInf(opts.RateMultiplier, 0) {
		return nil, fmt.Errorf("workload: replay knobs must be positive and finite (compress %v, rate %v)",
			opts.TimeCompress, opts.RateMultiplier)
	}
	rp := &Replayer{
		sim:     sim,
		tr:      tr,
		offer:   offer,
		opts:    opts,
		timeDiv: opts.TimeCompress * opts.RateMultiplier,
		nextID:  opts.FirstID,
	}
	if opts.ReuseTask {
		rp.reused = task.Chain(0, 0, 1, make([]float64, tr.Stages())...)
	}
	return rp, nil
}

// Replayed returns the number of records offered so far.
func (rp *Replayer) Replayed() uint64 { return rp.count }

// Err returns the first trace decode error, if any (io.EOF is a clean
// end and is not reported).
func (rp *Replayer) Err() error { return rp.err }

// Start schedules the first arrival. It returns io.EOF for an empty
// trace, a decode error, or nil with the replay armed; the simulator's
// run loop then drives everything.
func (rp *Replayer) Start() error {
	if !rp.advance() {
		if rp.err != nil {
			return rp.err
		}
		return io.EOF
	}
	rp.schedule()
	return nil
}

// advance reads the next record into rp.rec, honoring Limit. It reports
// whether a record is pending.
func (rp *Replayer) advance() bool {
	if rp.opts.Limit != 0 && rp.count >= rp.opts.Limit {
		rp.pending = false
		return false
	}
	if err := rp.tr.Next(&rp.rec); err != nil {
		if err != io.EOF {
			rp.err = err
		}
		rp.pending = false
		return false
	}
	rp.pending = true
	return true
}

// schedule arms the pending record's arrival event.
func (rp *Replayer) schedule() {
	at := rp.rec.Arrival / rp.timeDiv
	if at < rp.sim.Now() {
		at = rp.sim.Now() // guard against rounding on scaled times
	}
	rp.sim.AtTimer(at, rp)
}

// Fire offers the pending record and schedules the next one.
func (rp *Replayer) Fire(now des.Time) {
	rec := &rp.rec
	var t *task.Task
	if rp.reused != nil {
		t = rp.reused
		t.ID = rp.nextID
		t.Arrival = now
		t.Deadline = rec.Deadline / rp.opts.TimeCompress
		for j, c := range rec.Demands {
			t.Subtasks[j] = task.NewSubtask(c)
		}
		t.Class = rp.className(rec.Class)
	} else {
		t = task.Chain(rp.nextID, now, rec.Deadline/rp.opts.TimeCompress, rec.Demands...)
		t.Class = rp.className(rec.Class)
	}
	rp.nextID++
	rp.count++
	rp.pending = false
	rp.offer(t)
	if rp.advance() {
		rp.schedule()
	}
}

func (rp *Replayer) className(c int) string {
	if c < 0 {
		return ""
	}
	return rp.tr.Classes()[c]
}
