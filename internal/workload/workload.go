package workload

import (
	"fmt"
	"math"

	"feasregion/internal/des"
	"feasregion/internal/dist"
	"feasregion/internal/task"
)

// PipelineSpec describes the §4 synthetic workload for an N-stage
// pipeline with stage capacity normalized to 1.
type PipelineSpec struct {
	// Stages is the pipeline length.
	Stages int

	// Load is the offered input load as a fraction of the bottleneck
	// stage's capacity (1.0 = 100%; the paper sweeps 0.6–2.0).
	Load float64

	// MeanDemand is the mean per-stage computation time before scaling.
	MeanDemand float64

	// StageScale optionally skews per-stage mean demands (Fig. 6 load
	// imbalance); nil means balanced. Values are multipliers on
	// MeanDemand.
	StageScale []float64

	// Resolution is the ratio of the mean end-to-end deadline to the
	// mean total computation time (the paper's "task resolution"; ≈100
	// in Fig. 4, swept in Figs. 5 and 7).
	Resolution float64

	// DeadlineSpread widens the uniform deadline distribution to
	// mean·[1−s, 1+s]; 0 selects the default 0.5.
	DeadlineSpread float64
}

// validate panics on structurally impossible specs (programming errors).
func (s PipelineSpec) validate() {
	if s.Stages <= 0 {
		panic(fmt.Sprintf("workload: spec needs stages, got %d", s.Stages))
	}
	if s.Load <= 0 || s.MeanDemand <= 0 || s.Resolution <= 0 {
		panic(fmt.Sprintf("workload: load, mean demand, and resolution must be positive: %+v", s))
	}
	if s.StageScale != nil && len(s.StageScale) != s.Stages {
		panic(fmt.Sprintf("workload: %d stage scales for %d stages", len(s.StageScale), s.Stages))
	}
}

// stageMeans returns the per-stage mean demands after scaling.
func (s PipelineSpec) stageMeans() []float64 {
	means := make([]float64, s.Stages)
	for j := range means {
		means[j] = s.MeanDemand
		if s.StageScale != nil {
			means[j] *= s.StageScale[j]
		}
	}
	return means
}

// StageMeans returns the per-stage mean demands (for approximate
// admission estimators).
func (s PipelineSpec) StageMeans() []float64 {
	s.validate()
	return s.stageMeans()
}

// ArrivalRate returns the Poisson arrival rate λ that offers Load on the
// bottleneck (largest-mean) stage.
func (s PipelineSpec) ArrivalRate() float64 {
	s.validate()
	max := 0.0
	for _, m := range s.stageMeans() {
		if m > max {
			max = m
		}
	}
	return s.Load / max
}

// MeanDeadline returns the mean end-to-end deadline implied by the
// resolution: Resolution × (mean total computation).
func (s PipelineSpec) MeanDeadline() float64 {
	s.validate()
	total := 0.0
	for _, m := range s.stageMeans() {
		total += m
	}
	return s.Resolution * total
}

// Source is an open-loop Poisson arrival generator feeding a sink.
type Source struct {
	sim    *des.Simulator
	rng    *dist.RNG
	offer  func(*task.Task)
	demand []dist.Distribution
	dline  dist.Distribution
	rate   float64
	nextID task.ID
	count  uint64
	horiz  des.Time
	start  func()
}

// NewSource builds the §4 generator. offer is called with each arrival
// (typically pipeline.Offer). Arrivals stop after horizon.
func NewSource(sim *des.Simulator, spec PipelineSpec, seed int64, horizon des.Time, offer func(*task.Task)) *Source {
	spec.validate()
	if offer == nil {
		panic("workload: nil offer sink")
	}
	means := spec.stageMeans()
	demands := make([]dist.Distribution, len(means))
	for j, m := range means {
		demands[j] = dist.NewExponential(m)
	}
	spread := spec.DeadlineSpread
	if spread == 0 {
		spread = 0.5
	}
	if spread < 0 || spread >= 1 {
		panic(fmt.Sprintf("workload: deadline spread %v must be in [0, 1)", spread))
	}
	md := spec.MeanDeadline()
	s := &Source{
		sim:    sim,
		rng:    dist.NewRNG(seed),
		offer:  offer,
		demand: demands,
		dline:  dist.NewUniform(md*(1-spread), md*(1+spread)),
		rate:   spec.ArrivalRate(),
		horiz:  horizon,
	}
	s.start = s.scheduleNext
	return s
}

// Generated returns how many tasks the source has offered.
func (s *Source) Generated() uint64 { return s.count }

// SetFirstID makes the source assign task IDs starting at id, so the ID
// space can be partitioned when combining several generators on one
// system (task IDs must be globally unique per run).
func (s *Source) SetFirstID(id task.ID) { s.nextID = id }

// Start schedules the first arrival (or, for modulated variants, the
// first phase).
func (s *Source) Start() {
	s.start()
}

func (s *Source) scheduleNext() {
	gap := s.rng.ExpFloat64() / s.rate
	at := s.sim.Now() + gap
	if at > s.horiz {
		return
	}
	s.sim.AtTimer(at, s)
}

// Fire delivers the pending arrival and schedules the next one. It makes
// Source a des.Timer, so the steady-state arrival loop allocates nothing
// beyond the task itself (the closure-per-arrival of the old func path).
func (s *Source) Fire(des.Time) {
	s.emit()
	s.scheduleNext()
}

func (s *Source) emit() {
	now := s.sim.Now()
	demands := make([]float64, len(s.demand))
	for j, d := range s.demand {
		demands[j] = d.Sample(s.rng)
	}
	t := task.Chain(s.nextID, now, s.dline.Sample(s.rng), demands...)
	s.nextID++
	s.count++
	s.offer(t)
}

// PeriodicStream describes a periodic (or sporadic, via jitter) stream of
// identical chain tasks.
type PeriodicStream struct {
	// Name labels instances (Task.Class).
	Name string
	// Period separates nominal releases; Phase offsets the first one.
	Period, Phase float64
	// Jitter adds U[0, Jitter] to each nominal release (the §1 motivation:
	// jittered periodic streams handled by the aperiodic model).
	Jitter float64
	// Deadline is the relative end-to-end deadline of each instance.
	Deadline float64
	// Demands are the fixed per-stage computation times.
	Demands []float64
	// Importance is the semantic importance of instances.
	Importance float64
}

// Schedule releases instances of the stream into offer until horizon.
// IDs are drawn from *nextID, which is advanced. rng drives jitter only.
func (ps PeriodicStream) Schedule(sim *des.Simulator, rng *dist.RNG, horizon des.Time, nextID *task.ID, offer func(*task.Task)) {
	if ps.Period <= 0 || ps.Deadline <= 0 {
		panic(fmt.Sprintf("workload: stream %q needs positive period and deadline", ps.Name))
	}
	for k := 0; ; k++ {
		at := ps.Phase + float64(k)*ps.Period
		if ps.Jitter > 0 {
			at += rng.Float64() * ps.Jitter
		}
		if at > horizon {
			return
		}
		id := *nextID
		*nextID++
		sim.At(at, func() {
			t := task.Chain(id, at, ps.Deadline, ps.Demands...)
			t.Class = ps.Name
			t.Importance = ps.Importance
			offer(t)
		})
	}
}

// Utilization returns the stream's steady per-stage synthetic
// utilization contribution C_j/D (one current instance at a time when
// Period ≥ Deadline).
func (ps PeriodicStream) Utilization() []float64 {
	us := make([]float64, len(ps.Demands))
	for j, c := range ps.Demands {
		us[j] = c / ps.Deadline
	}
	return us
}

// TotalDemand returns the stream instance's total computation time.
func (ps PeriodicStream) TotalDemand() float64 {
	sum := 0.0
	for _, c := range ps.Demands {
		sum += c
	}
	return sum
}

// RateLoad returns the per-stage long-run real load ρ_j = C_j/Period.
func (ps PeriodicStream) RateLoad() []float64 {
	us := make([]float64, len(ps.Demands))
	for j, c := range ps.Demands {
		us[j] = c / ps.Period
	}
	return us
}

// HeavyTailedSource mirrors NewSource but draws demands from a bounded
// Pareto distribution — a stress case for approximate admission (§4.4),
// where using the mean underestimates occasional huge tasks.
func HeavyTailedSource(sim *des.Simulator, spec PipelineSpec, alpha float64, seed int64, horizon des.Time, offer func(*task.Task)) *Source {
	spec.validate()
	src := NewSource(sim, spec, seed, horizon, offer)
	for j, m := range spec.stageMeans() {
		// Bounded Pareto on [low, 100·low] with the requested shape,
		// rescaled to preserve the stage mean.
		p := dist.NewPareto(alpha, 1, 100)
		src.demand[j] = dist.NewScaled(p, m/p.Mean())
	}
	return src
}

// ImbalanceScales is a helper for Fig. 6: scale factors (2r/(1+r),
// 2/(1+r)) give a two-stage mean-demand ratio r while keeping the total
// mean demand constant.
func ImbalanceScales(ratio float64) []float64 {
	if ratio <= 0 || math.IsNaN(ratio) {
		panic(fmt.Sprintf("workload: imbalance ratio must be positive, got %v", ratio))
	}
	return []float64{2 * ratio / (1 + ratio), 2 / (1 + ratio)}
}
