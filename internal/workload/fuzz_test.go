package workload

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// FuzzTraceReader: arbitrary bytes must never panic the binary trace
// decoder; any input that decodes fully must survive a rewrite/redecode
// round trip byte-identically (the format has one encoding per record).
func FuzzTraceReader(f *testing.F) {
	valid := func(build func(tw *TraceWriter)) []byte {
		var b bytes.Buffer
		tw, err := NewTraceWriter(&b, 2, []string{"gold", "bronze"})
		if err != nil {
			f.Fatal(err)
		}
		build(tw)
		if err := tw.Close(); err != nil {
			f.Fatal(err)
		}
		return b.Bytes()
	}
	f.Add(valid(func(tw *TraceWriter) {}))
	f.Add(valid(func(tw *TraceWriter) {
		tw.Write(0.5, 10, 0, []float64{1, 2})
		tw.Write(1.5, 8, -1, []float64{0.5, 0.5})
	}))
	f.Add([]byte(TraceMagic))
	f.Add([]byte("FRTRACE\x01\x00\x00\x00\x00\x00\x00\x00\x00\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Fuzz(func(t *testing.T, input []byte) {
		tr, err := OpenTrace(bytes.NewReader(input))
		if err != nil {
			return
		}
		var rec TraceRecord
		var recs []TraceRecord
		for {
			if err := tr.Next(&rec); err != nil {
				if err != io.EOF {
					return // corrupt mid-stream: rejecting is correct
				}
				break
			}
			cp := rec
			cp.Demands = append([]float64(nil), rec.Demands...)
			recs = append(recs, cp)
		}
		// Fully decoded: re-encode and decode again; records must match.
		var out bytes.Buffer
		tw, err := NewTraceWriter(&out, tr.Stages(), tr.Classes())
		if err != nil {
			t.Fatalf("rebuilding writer from decoded header: %v", err)
		}
		for _, r := range recs {
			if err := tw.Write(r.Arrival, r.Deadline, r.Class, r.Demands); err != nil {
				t.Fatalf("re-encoding decoded record: %v", err)
			}
		}
		if err := tw.Close(); err != nil {
			t.Fatal(err)
		}
		tr2, err := OpenTrace(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("reopening own output: %v", err)
		}
		for i := range recs {
			if err := tr2.Next(&rec); err != nil {
				t.Fatalf("redecoding record %d: %v", i, err)
			}
			if rec.Arrival != recs[i].Arrival || rec.Deadline != recs[i].Deadline || rec.Class != recs[i].Class {
				t.Fatalf("record %d changed across round trip", i)
			}
		}
		if err := tr2.Next(&rec); err != io.EOF {
			t.Fatalf("round trip grew the trace: %v", err)
		}
	})
}

// FuzzParseReplay: arbitrary input must never panic; any trace that
// parses must survive a write/reparse round trip with the same task
// count and stage count.
func FuzzParseReplay(f *testing.F) {
	f.Add(sampleTrace)
	f.Add("arrival,deadline,c1\n1,2,3\n")
	f.Add("1,2,3\n4,5,6\n")
	f.Add(",,,\n")
	f.Add("a,b,c\n1,-2,3\n")
	f.Add("1e308,1e308,1e308\n")
	f.Fuzz(func(t *testing.T, input string) {
		rep, err := ParseReplay(strings.NewReader(input))
		if err != nil {
			return
		}
		var b strings.Builder
		if err := rep.WriteCSV(&b); err != nil {
			t.Fatalf("WriteCSV on parsed trace: %v", err)
		}
		back, err := ParseReplay(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("reparsing own output: %v\n%s", err, b.String())
		}
		if len(back.Tasks) != len(rep.Tasks) {
			t.Fatalf("round trip changed task count %d -> %d", len(rep.Tasks), len(back.Tasks))
		}
		if back.Stages() != rep.Stages() {
			t.Fatalf("round trip changed stages %d -> %d", rep.Stages(), back.Stages())
		}
	})
}
