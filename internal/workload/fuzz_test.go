package workload

import (
	"strings"
	"testing"
)

// FuzzParseReplay: arbitrary input must never panic; any trace that
// parses must survive a write/reparse round trip with the same task
// count and stage count.
func FuzzParseReplay(f *testing.F) {
	f.Add(sampleTrace)
	f.Add("arrival,deadline,c1\n1,2,3\n")
	f.Add("1,2,3\n4,5,6\n")
	f.Add(",,,\n")
	f.Add("a,b,c\n1,-2,3\n")
	f.Add("1e308,1e308,1e308\n")
	f.Fuzz(func(t *testing.T, input string) {
		rep, err := ParseReplay(strings.NewReader(input))
		if err != nil {
			return
		}
		var b strings.Builder
		if err := rep.WriteCSV(&b); err != nil {
			t.Fatalf("WriteCSV on parsed trace: %v", err)
		}
		back, err := ParseReplay(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("reparsing own output: %v\n%s", err, b.String())
		}
		if len(back.Tasks) != len(rep.Tasks) {
			t.Fatalf("round trip changed task count %d -> %d", len(rep.Tasks), len(back.Tasks))
		}
		if back.Stages() != rep.Stages() {
			t.Fatalf("round trip changed stages %d -> %d", rep.Stages(), back.Stages())
		}
	})
}
