package workload

import (
	"bytes"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"feasregion/internal/des"
	"feasregion/internal/task"
)

func TestTraceRoundTrip(t *testing.T) {
	rep, err := ParseReplay(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	rep.Tasks[0].Class = "gold"
	rep.Tasks[1].Class = "bronze"

	var buf bytes.Buffer
	n, err := rep.WriteTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(rep.Tasks)) {
		t.Fatalf("wrote %d records for %d tasks", n, len(rep.Tasks))
	}

	back, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Tasks) != len(rep.Tasks) {
		t.Fatalf("round trip changed task count %d -> %d", len(rep.Tasks), len(back.Tasks))
	}
	for i, want := range rep.Tasks {
		got := back.Tasks[i]
		if got.Arrival != want.Arrival || got.Deadline != want.Deadline || got.Class != want.Class {
			t.Fatalf("task %d: got (%v, %v, %q), want (%v, %v, %q)",
				i, got.Arrival, got.Deadline, got.Class, want.Arrival, want.Deadline, want.Class)
		}
		for j := range want.Subtasks {
			if got.StageDemand(j) != want.StageDemand(j) {
				t.Fatalf("task %d stage %d demand %v != %v", i, j, got.StageDemand(j), want.StageDemand(j))
			}
		}
	}
}

func TestTraceWriterValidation(t *testing.T) {
	mk := func() *TraceWriter {
		tw, err := NewTraceWriter(io.Discard, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		return tw
	}
	cases := []struct {
		name string
		fn   func(tw *TraceWriter) error
	}{
		{"wrong demand count", func(tw *TraceWriter) error { return tw.Write(0, 1, -1, []float64{1}) }},
		{"NaN arrival", func(tw *TraceWriter) error { return tw.Write(math.NaN(), 1, -1, []float64{1, 1}) }},
		{"zero deadline", func(tw *TraceWriter) error { return tw.Write(0, 0, -1, []float64{1, 1}) }},
		{"infinite deadline", func(tw *TraceWriter) error { return tw.Write(0, math.Inf(1), -1, []float64{1, 1}) }},
		{"negative demand", func(tw *TraceWriter) error { return tw.Write(0, 1, -1, []float64{1, -1}) }},
		{"class outside table", func(tw *TraceWriter) error { return tw.Write(0, 1, 0, []float64{1, 1}) }},
		{"time travel", func(tw *TraceWriter) error {
			if err := tw.Write(5, 1, -1, []float64{1, 1}); err != nil {
				return err
			}
			return tw.Write(4, 1, -1, []float64{1, 1})
		}},
	}
	for _, tc := range cases {
		tw := mk()
		if err := tc.fn(tw); err == nil {
			t.Errorf("%s: want error", tc.name)
		} else if tw.Close() == nil {
			t.Errorf("%s: error must stick through Close", tc.name)
		}
	}
	if _, err := NewTraceWriter(io.Discard, 0, nil); err == nil {
		t.Error("zero stages: want error")
	}
	if _, err := NewTraceWriter(io.Discard, 1, []string{"a", "a"}); err == nil {
		t.Error("duplicate classes: want error")
	}
	if _, err := NewTraceWriter(io.Discard, 1, make([]string, 256)); err == nil {
		t.Error("256 classes: want error")
	}
}

func TestTraceCountBackpatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := NewTraceWriter(f, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := tw.Write(float64(i), 10, -1, []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	tr, err := OpenTrace(rf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Count() != 7 {
		t.Fatalf("backpatched count = %d, want 7", tr.Count())
	}
	var rec TraceRecord
	for {
		if err := tr.Next(&rec); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if tr.Records() != 7 {
		t.Fatalf("decoded %d records, want 7", tr.Records())
	}
}

func TestTraceTruncationDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tw, _ := NewTraceWriter(f, 1, nil)
	for i := 0; i < 3; i++ {
		if err := tw.Write(float64(i), 10, -1, []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Drop the last record: header still declares 3.
	tr, err := OpenTrace(bytes.NewReader(data[:len(data)-25]))
	if err != nil {
		t.Fatal(err)
	}
	var rec TraceRecord
	var last error
	for {
		if last = tr.Next(&rec); last != nil {
			break
		}
	}
	if last == io.EOF || !strings.Contains(last.Error(), "truncated") {
		t.Fatalf("want truncation error, got %v", last)
	}
}

func TestOpenTraceRejectsGarbage(t *testing.T) {
	for _, in := range []string{"", "FRTRACE", "not a trace at all........", "FRTRACE\x02" + strings.Repeat("\x00", 16)} {
		if _, err := OpenTrace(strings.NewReader(in)); err == nil {
			t.Errorf("OpenTrace(%q): want error", in)
		}
	}
}

func TestImportCSVMatchesParseReplay(t *testing.T) {
	// ImportCSV never buffers the file, so rows must arrive sorted.
	const sorted = "arrival,deadline,c1,c2\n0.1,8,0.5,0.5\n0.5,10,1,2\n2.0,12,3,1\n"
	var buf bytes.Buffer
	n, err := ImportCSV(strings.NewReader(sorted), &buf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ParseReplay(strings.NewReader(sorted))
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(rep.Tasks)) {
		t.Fatalf("imported %d records, ParseReplay found %d", n, len(rep.Tasks))
	}
	back, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range rep.Tasks {
		got := back.Tasks[i]
		if got.Arrival != want.Arrival || got.Deadline != want.Deadline {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestImportCSVRejectsUnordered(t *testing.T) {
	if _, err := ImportCSV(strings.NewReader("5,10,1\n1,10,1\n"), io.Discard); err == nil {
		t.Fatal("out-of-order CSV import must fail")
	}
}

// collectReplayed drives a replayer to completion and returns copies of
// the offered tasks.
func collectReplayed(t *testing.T, data []byte, opts ReplayOptions) []task.Task {
	t.Helper()
	tr, err := OpenTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	sim := des.New()
	var got []task.Task
	rp, err := NewReplayer(sim, tr, opts, func(tk *task.Task) { got = append(got, *tk) })
	if err != nil {
		t.Fatal(err)
	}
	if err := rp.Start(); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if rp.Err() != nil {
		t.Fatal(rp.Err())
	}
	return got
}

func traceBytes(t *testing.T) []byte {
	t.Helper()
	rep, err := ParseReplay(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := rep.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReplayerPlaysRecordedTimes(t *testing.T) {
	data := traceBytes(t)
	rep, _ := ParseReplay(strings.NewReader(sampleTrace))
	got := collectReplayed(t, data, ReplayOptions{})
	if len(got) != len(rep.Tasks) {
		t.Fatalf("replayed %d tasks, want %d", len(got), len(rep.Tasks))
	}
	for i, want := range rep.Tasks {
		if got[i].Arrival != want.Arrival || got[i].Deadline != want.Deadline {
			t.Fatalf("task %d: got (%v, %v), want (%v, %v)",
				i, got[i].Arrival, got[i].Deadline, want.Arrival, want.Deadline)
		}
		if got[i].ID != task.ID(i) {
			t.Fatalf("task %d has ID %d", i, got[i].ID)
		}
	}
}

func TestReplayerTimeCompress(t *testing.T) {
	data := traceBytes(t)
	base := collectReplayed(t, data, ReplayOptions{})
	fast := collectReplayed(t, data, ReplayOptions{TimeCompress: 2})
	for i := range base {
		if want := base[i].Arrival / 2; math.Abs(fast[i].Arrival-want) > 1e-12 {
			t.Fatalf("task %d arrival %v, want %v", i, fast[i].Arrival, want)
		}
		if want := base[i].Deadline / 2; math.Abs(fast[i].Deadline-want) > 1e-12 {
			t.Fatalf("task %d deadline %v, want %v (compression must tighten deadlines)", i, fast[i].Deadline, want)
		}
	}
}

func TestReplayerRateMultiplier(t *testing.T) {
	data := traceBytes(t)
	base := collectReplayed(t, data, ReplayOptions{})
	dense := collectReplayed(t, data, ReplayOptions{RateMultiplier: 4})
	for i := range base {
		if want := base[i].Arrival / 4; math.Abs(dense[i].Arrival-want) > 1e-12 {
			t.Fatalf("task %d arrival %v, want %v", i, dense[i].Arrival, want)
		}
		if dense[i].Deadline != base[i].Deadline {
			t.Fatalf("task %d deadline changed: rate multiplier must not touch deadlines", i)
		}
	}
}

func TestReplayerLimitAndFirstID(t *testing.T) {
	data := traceBytes(t)
	got := collectReplayed(t, data, ReplayOptions{Limit: 2, FirstID: 100})
	if len(got) != 2 {
		t.Fatalf("replayed %d tasks, want 2", len(got))
	}
	if got[0].ID != 100 || got[1].ID != 101 {
		t.Fatalf("IDs %d, %d, want 100, 101", got[0].ID, got[1].ID)
	}
}

func TestReplayerReuseTask(t *testing.T) {
	data := traceBytes(t)
	rep, _ := ParseReplay(strings.NewReader(sampleTrace))
	tr, err := OpenTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	sim := des.New()
	var seen []*task.Task
	var arrivals []float64
	rp, err := NewReplayer(sim, tr, ReplayOptions{ReuseTask: true}, func(tk *task.Task) {
		seen = append(seen, tk)
		arrivals = append(arrivals, tk.Arrival)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rp.Start(); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if rp.Replayed() != uint64(len(rep.Tasks)) {
		t.Fatalf("replayed %d, want %d", rp.Replayed(), len(rep.Tasks))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] != seen[0] {
			t.Fatal("ReuseTask must offer one task value")
		}
	}
	for i, want := range rep.Tasks {
		if arrivals[i] != want.Arrival {
			t.Fatalf("arrival %d: %v != %v", i, arrivals[i], want.Arrival)
		}
	}
}

func TestReplayerKnobValidation(t *testing.T) {
	data := traceBytes(t)
	for _, opts := range []ReplayOptions{
		{TimeCompress: -1},
		{RateMultiplier: math.Inf(1)},
		{TimeCompress: math.NaN()},
	} {
		tr, err := OpenTrace(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := NewReplayer(des.New(), tr, opts, func(*task.Task) {}); err == nil {
			t.Errorf("opts %+v: want error", opts)
		}
	}
}

func TestReplayerEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := OpenTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rp, err := NewReplayer(des.New(), tr, ReplayOptions{}, func(*task.Task) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := rp.Start(); err != io.EOF {
		t.Fatalf("Start on empty trace = %v, want io.EOF", err)
	}
}
