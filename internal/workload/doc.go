// Package workload generates the paper's evaluation workloads: Poisson
// streams of aperiodic pipeline tasks with exponential per-stage demands
// and uniform end-to-end deadlines (§4), periodic streams with jitter,
// and the TSCE Table 1 mission scenario (§5). The "task resolution"
// knob is the §4 ratio of mean deadline to mean total computation that
// Figs. 5 and 7 sweep.
package workload
