package workload

import (
	"math"
	"testing"

	"feasregion/internal/des"
	"feasregion/internal/dist"
	"feasregion/internal/task"
)

func TestArrivalRateBalanced(t *testing.T) {
	spec := PipelineSpec{Stages: 2, Load: 1.2, MeanDemand: 0.5, Resolution: 100}
	if got := spec.ArrivalRate(); math.Abs(got-2.4) > 1e-12 {
		t.Fatalf("ArrivalRate = %v, want 2.4", got)
	}
}

func TestArrivalRateImbalanced(t *testing.T) {
	// Bottleneck mean demand = 1.5 -> rate = load / 1.5.
	spec := PipelineSpec{
		Stages: 2, Load: 0.9, MeanDemand: 1, Resolution: 100,
		StageScale: []float64{1.5, 0.5},
	}
	if got := spec.ArrivalRate(); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("ArrivalRate = %v, want 0.6", got)
	}
}

func TestMeanDeadlineFollowsResolution(t *testing.T) {
	spec := PipelineSpec{Stages: 3, Load: 1, MeanDemand: 2, Resolution: 50}
	// Total mean computation = 6, so mean deadline = 300.
	if got := spec.MeanDeadline(); got != 300 {
		t.Fatalf("MeanDeadline = %v, want 300", got)
	}
}

func TestSourceGeneratesExpectedLoad(t *testing.T) {
	spec := PipelineSpec{Stages: 2, Load: 1.0, MeanDemand: 1, Resolution: 100}
	sim := des.New()
	var count int
	var totalDemand [2]float64
	var deadlines []float64
	src := NewSource(sim, spec, 7, 10_000, func(tk *task.Task) {
		count++
		totalDemand[0] += tk.StageDemand(0)
		totalDemand[1] += tk.StageDemand(1)
		deadlines = append(deadlines, tk.Deadline)
	})
	src.Start()
	sim.Run()
	// λ = 1, horizon 10k -> ≈10k arrivals.
	if count < 9500 || count > 10500 {
		t.Fatalf("generated %d arrivals, want ≈10000", count)
	}
	if src.Generated() != uint64(count) {
		t.Fatalf("Generated() = %d, want %d", src.Generated(), count)
	}
	for j := 0; j < 2; j++ {
		mean := totalDemand[j] / float64(count)
		if math.Abs(mean-1) > 0.05 {
			t.Fatalf("stage %d mean demand %v, want ≈1", j, mean)
		}
	}
	// Deadlines uniform in 200·[0.5, 1.5].
	var dmin, dmax, dsum float64 = math.Inf(1), 0, 0
	for _, d := range deadlines {
		dmin = math.Min(dmin, d)
		dmax = math.Max(dmax, d)
		dsum += d
	}
	if dmin < 100 || dmax > 300 {
		t.Fatalf("deadline range [%v, %v], want within [100, 300]", dmin, dmax)
	}
	if mean := dsum / float64(count); math.Abs(mean-200) > 5 {
		t.Fatalf("mean deadline %v, want ≈200", mean)
	}
}

func TestSourceRespectsHorizon(t *testing.T) {
	spec := PipelineSpec{Stages: 1, Load: 5, MeanDemand: 1, Resolution: 10}
	sim := des.New()
	last := 0.0
	src := NewSource(sim, spec, 7, 100, func(tk *task.Task) { last = tk.Arrival })
	src.Start()
	sim.Run()
	if last > 100 {
		t.Fatalf("arrival at %v past horizon 100", last)
	}
}

func TestSourceDeterminism(t *testing.T) {
	spec := PipelineSpec{Stages: 2, Load: 1, MeanDemand: 1, Resolution: 50}
	run := func() []float64 {
		sim := des.New()
		var sig []float64
		src := NewSource(sim, spec, 42, 200, func(tk *task.Task) {
			sig = append(sig, tk.Arrival, tk.Deadline, tk.StageDemand(0), tk.StageDemand(1))
		})
		src.Start()
		sim.Run()
		return sig
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("replay diverged in count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}

func TestStageMeansWithScales(t *testing.T) {
	spec := PipelineSpec{
		Stages: 2, Load: 1, MeanDemand: 2, Resolution: 10,
		StageScale: ImbalanceScales(3),
	}
	means := spec.StageMeans()
	if math.Abs(means[0]/means[1]-3) > 1e-12 {
		t.Fatalf("mean ratio %v, want 3", means[0]/means[1])
	}
	if math.Abs(means[0]+means[1]-4) > 1e-12 {
		t.Fatalf("total mean %v, want constant 4", means[0]+means[1])
	}
}

func TestImbalanceScalesValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ImbalanceScales(-1)
}

func TestPeriodicStreamSchedule(t *testing.T) {
	sim := des.New()
	rng := dist.NewRNG(1)
	var arrivals []float64
	var id task.ID
	ps := PeriodicStream{Name: "tick", Period: 10, Phase: 3, Deadline: 5, Demands: []float64{1}}
	ps.Schedule(sim, rng, 45, &id, func(tk *task.Task) {
		arrivals = append(arrivals, tk.Arrival)
		if tk.Class != "tick" || tk.Deadline != 5 {
			t.Errorf("bad instance %+v", tk)
		}
	})
	sim.Run()
	want := []float64{3, 13, 23, 33, 43}
	if len(arrivals) != len(want) {
		t.Fatalf("arrivals %v, want %v", arrivals, want)
	}
	for i := range want {
		if arrivals[i] != want[i] {
			t.Fatalf("arrivals %v, want %v", arrivals, want)
		}
	}
	if id != 5 {
		t.Fatalf("next ID %d, want 5", id)
	}
}

func TestPeriodicStreamJitterBounds(t *testing.T) {
	sim := des.New()
	rng := dist.NewRNG(1)
	var id task.ID
	ps := PeriodicStream{Name: "j", Period: 10, Jitter: 4, Deadline: 5, Demands: []float64{1}}
	k := 0
	ps.Schedule(sim, rng, 200, &id, func(tk *task.Task) {
		nominal := float64(k) * 10
		if tk.Arrival < nominal || tk.Arrival > nominal+4 {
			t.Errorf("release %d at %v outside [%v, %v]", k, tk.Arrival, nominal, nominal+4)
		}
		k++
	})
	sim.Run()
	if k == 0 {
		t.Fatal("no releases")
	}
}

func TestPeriodicStreamHelpers(t *testing.T) {
	ps := PeriodicStream{Period: 2, Deadline: 4, Demands: []float64{1, 2}}
	u := ps.Utilization()
	if u[0] != 0.25 || u[1] != 0.5 {
		t.Fatalf("utilization %v", u)
	}
	r := ps.RateLoad()
	if r[0] != 0.5 || r[1] != 1 {
		t.Fatalf("rate load %v", r)
	}
	if ps.TotalDemand() != 3 {
		t.Fatalf("total demand %v", ps.TotalDemand())
	}
}

func TestHeavyTailedSourcePreservesMean(t *testing.T) {
	spec := PipelineSpec{Stages: 1, Load: 1, MeanDemand: 2, Resolution: 100}
	sim := des.New()
	var sum float64
	var n int
	src := HeavyTailedSource(sim, spec, 1.5, 3, 20_000, func(tk *task.Task) {
		sum += tk.StageDemand(0)
		n++
	})
	src.Start()
	sim.Run()
	if n == 0 {
		t.Fatal("no arrivals")
	}
	if mean := sum / float64(n); math.Abs(mean-2)/2 > 0.1 {
		t.Fatalf("heavy-tailed mean demand %v, want ≈2", mean)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []PipelineSpec{
		{Stages: 0, Load: 1, MeanDemand: 1, Resolution: 1},
		{Stages: 1, Load: 0, MeanDemand: 1, Resolution: 1},
		{Stages: 1, Load: 1, MeanDemand: 0, Resolution: 1},
		{Stages: 1, Load: 1, MeanDemand: 1, Resolution: 0},
		{Stages: 2, Load: 1, MeanDemand: 1, Resolution: 1, StageScale: []float64{1}},
	}
	for i, spec := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("spec %d: expected panic", i)
				}
			}()
			spec.ArrivalRate()
		}()
	}
}

func TestTSCEReservedUtilization(t *testing.T) {
	c := NewTSCE()
	res := c.ReservedUtilization()
	want := []float64{0.40, 0.25, 0.10}
	for j := range want {
		if math.Abs(res[j]-want[j]) > 1e-9 {
			t.Fatalf("reserved[%d] = %v, want %v (paper §5)", j, res[j], want[j])
		}
	}
}

func TestTSCEStreamsMatchTable1(t *testing.T) {
	c := NewTSCE()
	if c.WeaponTargeting.Period != 0.05 || c.WeaponTargeting.Deadline != 0.05 {
		t.Fatal("Weapon Targeting must run at P=D=50ms")
	}
	if c.WeaponDetection.Deadline != 0.5 {
		t.Fatal("Weapon Detection deadline must be 500ms")
	}
	if c.TrackUpdateDemand != 0.001 || c.TrackUpdateDeadline != 1 {
		t.Fatal("track updates are 1ms at D=1s")
	}
	if c.AdmissionHold != 0.2 {
		t.Fatal("admission hold must be 200ms")
	}
}

func TestTSCEScheduleTracking(t *testing.T) {
	c := NewTSCE()
	sim := des.New()
	rng := dist.NewRNG(5)
	var id task.ID
	perClass := map[string]int{}
	c.ScheduleTracking(sim, rng, 20, 3, &id, func(tk *task.Task) {
		perClass[tk.Class]++
		if tk.Class == "track-update" && tk.StageDemand(0) != 0.001 {
			t.Errorf("track update demand %v", tk.StageDemand(0))
		}
	})
	sim.Run()
	// 3s horizon: distribution at 0,1,2,3 (4 releases); each track has a
	// random phase in [0,1) so 3 or 4 releases each.
	if perClass["track-distribution"] != 4 {
		t.Fatalf("distribution releases %d, want 4", perClass["track-distribution"])
	}
	if perClass["track-update"] < 3*20 || perClass["track-update"] > 4*20 {
		t.Fatalf("track updates %d, want 60..80", perClass["track-update"])
	}
}

func TestTSCEScheduleReserved(t *testing.T) {
	c := NewTSCE()
	sim := des.New()
	rng := dist.NewRNG(5)
	var id task.ID
	count := map[string]int{}
	c.ScheduleReserved(sim, rng, 1.0, &id, func(tk *task.Task) { count[tk.Class]++ })
	sim.Run()
	// Horizon 1s: WD at 0, 0.5, 1.0 -> 3; WT every 50ms -> 21; UAV -> 3.
	if count["weapon-detection"] != 3 || count["uav-video"] != 3 {
		t.Fatalf("counts %v", count)
	}
	if count["weapon-targeting"] != 21 {
		t.Fatalf("weapon targeting releases %d, want 21", count["weapon-targeting"])
	}
}

func TestSourceSetFirstID(t *testing.T) {
	spec := PipelineSpec{Stages: 1, Load: 1, MeanDemand: 1, Resolution: 10}
	sim := des.New()
	var first task.ID = -1
	src := NewSource(sim, spec, 1, 50, func(tk *task.Task) {
		if first == -1 {
			first = tk.ID
		}
	})
	src.SetFirstID(5000)
	src.Start()
	sim.Run()
	if first != 5000 {
		t.Fatalf("first ID %d, want 5000", first)
	}
}

func TestSensorFlowShape(t *testing.T) {
	spec := DefaultSensorFlow()
	spec.ExtraBranches = 1
	g := dist.NewRNG(9)
	flow := spec.Build(g)
	if err := flow.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(flow.Nodes) != spec.NodeCount() {
		t.Fatalf("nodes %d, want %d", len(flow.Nodes), spec.NodeCount())
	}
	// Structure: one source (ingest), one sink (display).
	in := flow.Predecessors()
	sources, sinks := 0, 0
	for i := range flow.Nodes {
		if in[i] == 0 {
			sources++
		}
		if len(flow.Edges[i]) == 0 {
			sinks++
		}
	}
	if sources != 1 || sinks != 1 {
		t.Fatalf("sources %d sinks %d, want 1/1", sources, sinks)
	}
	// End-to-end delay is ingest + max(branches) + fuse + display: with
	// node weights 1 the longest path has 4 nodes.
	if got := flow.LongestPath(func(int) float64 { return 1 }); got != 4 {
		t.Fatalf("longest path %v nodes, want 4", got)
	}
}

func TestSensorFlowDemandMeans(t *testing.T) {
	spec := DefaultSensorFlow()
	g := dist.NewRNG(10)
	total := 0.0
	const n = 5000
	for i := 0; i < n; i++ {
		flow := spec.Build(g)
		for _, node := range flow.Nodes {
			total += node.Subtask.Demand
		}
	}
	wantMean := 0.4 + 0.8 + 0.8 + 0.3 + 0.5
	if got := total / n; math.Abs(got-wantMean) > 0.1 {
		t.Fatalf("mean total demand %v, want ≈%v", got, wantMean)
	}
}

func TestMixedSourceRatesAndLabels(t *testing.T) {
	sim := des.New()
	classes := []ClassSpec{
		{Name: "fast", Rate: 10, Demands: []dist.Distribution{dist.NewExponential(0.01)},
			Deadline: dist.NewDeterministic(1), Importance: 1},
		{Name: "slow", Rate: 1, Demands: []dist.Distribution{dist.NewExponential(0.5)},
			Deadline: dist.NewUniform(5, 10), Importance: 5},
	}
	got := map[string]int{}
	ids := map[task.ID]bool{}
	ms := NewMixedSource(sim, 1, classes, 7, 100, 1000, func(tk *task.Task) {
		got[tk.Class]++
		if ids[tk.ID] {
			t.Errorf("duplicate task ID %d", tk.ID)
		}
		ids[tk.ID] = true
		if tk.ID < 100 {
			t.Errorf("ID %d below firstID", tk.ID)
		}
		switch tk.Class {
		case "fast":
			if tk.Deadline != 1 || tk.Importance != 1 {
				t.Errorf("fast instance %+v", tk)
			}
		case "slow":
			if tk.Deadline < 5 || tk.Deadline > 10 || tk.Importance != 5 {
				t.Errorf("slow instance %+v", tk)
			}
		}
	})
	sim.Run()
	if got["fast"] < 9000 || got["fast"] > 11000 {
		t.Fatalf("fast arrivals %d, want ≈10000", got["fast"])
	}
	if got["slow"] < 800 || got["slow"] > 1200 {
		t.Fatalf("slow arrivals %d, want ≈1000", got["slow"])
	}
	counts := ms.Generated()
	if counts["fast"] != uint64(got["fast"]) || counts["slow"] != uint64(got["slow"]) {
		t.Fatalf("Generated() %v vs observed %v", counts, got)
	}
}

func TestMixedSourceValidation(t *testing.T) {
	sim := des.New()
	good := ClassSpec{Name: "x", Rate: 1,
		Demands:  []dist.Distribution{dist.NewExponential(1)},
		Deadline: dist.NewDeterministic(1)}
	for name, fn := range map[string]func(){
		"zero stages": func() { NewMixedSource(sim, 0, []ClassSpec{good}, 1, 0, 10, func(*task.Task) {}) },
		"no classes":  func() { NewMixedSource(sim, 1, nil, 1, 0, 10, func(*task.Task) {}) },
		"nil sink":    func() { NewMixedSource(sim, 1, []ClassSpec{good}, 1, 0, 10, nil) },
		"zero rate": func() {
			bad := good
			bad.Rate = 0
			NewMixedSource(sim, 1, []ClassSpec{bad}, 1, 0, 10, func(*task.Task) {})
		},
		"wrong demand count": func() {
			bad := good
			bad.Demands = nil
			NewMixedSource(sim, 1, []ClassSpec{bad}, 1, 0, 10, func(*task.Task) {})
		},
		"nil deadline": func() {
			bad := good
			bad.Deadline = nil
			NewMixedSource(sim, 1, []ClassSpec{bad}, 1, 0, 10, func(*task.Task) {})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMixedSourceDrivesPipelineClasses(t *testing.T) {
	// End-to-end: mixed classes flow into per-class metrics.
	sim := des.New()
	classes := []ClassSpec{
		{Name: "a", Rate: 2, Demands: []dist.Distribution{dist.NewExponential(0.05)},
			Deadline: dist.NewDeterministic(2)},
		{Name: "b", Rate: 1, Demands: []dist.Distribution{dist.NewExponential(0.1)},
			Deadline: dist.NewDeterministic(4)},
	}
	count := 0
	NewMixedSource(sim, 1, classes, 3, 0, 200, func(tk *task.Task) { count++ })
	sim.Run()
	if count == 0 {
		t.Fatal("no arrivals")
	}
}
