package workload

import (
	"bytes"
	"math"
	"testing"

	"feasregion/internal/des"
	"feasregion/internal/task"
)

func testScenario() *Scenario {
	return &Scenario{
		Stages:     2,
		MeanDemand: 1,
		Curve: []RatePoint{
			{At: 0, Rate: 0.2},
			{At: 100, Rate: 0.5},
			{At: 200, Rate: 0.1},
		},
		Cohorts: []Cohort{
			{Name: "gold", Share: 0.3, DemandScale: 1.5, Resolution: 50},
			{Name: "bronze", Share: 0.7, DemandScale: 0.8, Resolution: 120},
		},
		Crowds:  []FlashCrowd{{Start: 40, Duration: 20, Multiplier: 1.5}},
		Horizon: 250,
		Seed:    7,
	}
}

func TestScenarioValidate(t *testing.T) {
	if err := testScenario().Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	breakIt := []struct {
		name string
		mut  func(*Scenario)
	}{
		{"no stages", func(s *Scenario) { s.Stages = 0 }},
		{"no curve", func(s *Scenario) { s.Curve = nil }},
		{"curve not increasing", func(s *Scenario) { s.Curve[1].At = 0 }},
		{"negative rate", func(s *Scenario) { s.Curve[0].Rate = -1 }},
		{"no cohorts", func(s *Scenario) { s.Cohorts = nil }},
		{"shares not 1", func(s *Scenario) { s.Cohorts[0].Share = 0.5 }},
		{"duplicate cohort", func(s *Scenario) { s.Cohorts[1].Name = "gold" }},
		{"unnamed cohort", func(s *Scenario) { s.Cohorts[0].Name = "" }},
		{"bad spread", func(s *Scenario) { s.Cohorts[0].DeadlineSpread = 1 }},
		{"no horizon", func(s *Scenario) { s.Horizon = 0 }},
		{"zero-duration crowd", func(s *Scenario) { s.Crowds[0].Duration = 0 }},
		{"bad stage scale", func(s *Scenario) { s.StageScale = []float64{1} }},
	}
	for _, tc := range breakIt {
		sc := testScenario()
		tc.mut(sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestScenarioFeasibilityCheck(t *testing.T) {
	sc := testScenario()
	// Peak effective rate is 1.5× the curve at the crowd window; push the
	// base rate up until ρ crosses 1 at the peak.
	sc.Curve = []RatePoint{{At: 0, Rate: 1.2}}
	if err := sc.Validate(); err == nil {
		t.Fatal("overloaded scenario must fail validation")
	}
	sc.AllowOverload = true
	if err := sc.Validate(); err != nil {
		t.Fatalf("AllowOverload must bypass feasibility: %v", err)
	}
	load, _ := sc.PeakLoad()
	if load <= 1 {
		t.Fatalf("peak load %v, expected > 1", load)
	}
}

func TestScenarioRate(t *testing.T) {
	sc := testScenario()
	if got := sc.Rate(0); got != 0.2 {
		t.Fatalf("Rate(0) = %v", got)
	}
	if got := sc.Rate(50); math.Abs(got-0.35*1.5) > 1e-12 {
		t.Fatalf("Rate(50) = %v, want crowd-scaled midpoint %v", got, 0.35*1.5)
	}
	if got := sc.Rate(300); got != 0.1 {
		t.Fatalf("Rate(300) = %v, want last curve level", got)
	}
	// The peak sits just inside the crowd's end (t→60⁻): base
	// 0.2+0.6·0.3 = 0.38 scaled by 1.5 beats the curve's own 0.5 peak.
	if got := sc.MaxRate(); math.Abs(got-0.38*1.5) > 1e-9 {
		t.Fatalf("MaxRate = %v, want %v (crowd end boundary)", got, 0.38*1.5)
	}
}

func TestScenarioRecordTraceDeterministic(t *testing.T) {
	sc := testScenario()
	var a, b bytes.Buffer
	na, err := sc.RecordTrace(&a)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := sc.RecordTrace(&b)
	if err != nil {
		t.Fatal(err)
	}
	if na != nb || !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("same seed produced different traces (%d vs %d records)", na, nb)
	}
	if na == 0 {
		t.Fatal("scenario produced no arrivals")
	}
	sc.Seed = 8
	var c bytes.Buffer
	if _, err := sc.RecordTrace(&c); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestScenarioCompileMatchesRecordTrace(t *testing.T) {
	sc := testScenario()
	var buf bytes.Buffer
	if _, err := sc.RecordTrace(&buf); err != nil {
		t.Fatal(err)
	}
	recorded, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	sim := des.New()
	var live []*task.Task
	src, err := sc.Compile(sim, func(tk *task.Task) { live = append(live, tk) })
	if err != nil {
		t.Fatal(err)
	}
	src.Start()
	sim.Run()

	if len(live) != len(recorded.Tasks) {
		t.Fatalf("live generation made %d tasks, trace has %d", len(live), len(recorded.Tasks))
	}
	for i, want := range recorded.Tasks {
		got := live[i]
		if got.Arrival != want.Arrival || got.Deadline != want.Deadline || got.Class != want.Class {
			t.Fatalf("task %d: live (%v, %v, %q) != recorded (%v, %v, %q)",
				i, got.Arrival, got.Deadline, got.Class, want.Arrival, want.Deadline, want.Class)
		}
		for j := range want.Subtasks {
			if got.StageDemand(j) != want.StageDemand(j) {
				t.Fatalf("task %d stage %d demand mismatch", i, j)
			}
		}
	}
	if src.Generated() != uint64(len(live)) {
		t.Fatalf("Generated() = %d, offered %d", src.Generated(), len(live))
	}
}

func TestScenarioCohortMix(t *testing.T) {
	sc := testScenario()
	sc.Horizon = 20000
	sc.Curve = []RatePoint{{At: 0, Rate: 0.4}}
	sc.Crowds = nil
	var buf bytes.Buffer
	n, err := sc.RecordTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := OpenTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]uint64, len(sc.Cohorts))
	var rec TraceRecord
	for tr.Next(&rec) == nil {
		counts[rec.Class]++
	}
	gold := float64(counts[0]) / float64(n)
	if math.Abs(gold-0.3) > 0.02 {
		t.Fatalf("gold share %v, want ≈0.3 over %d arrivals", gold, n)
	}
}

func TestScenarioArrivalsTrackCurve(t *testing.T) {
	// A 10× rate step should yield ≈10× the arrivals in equal windows.
	sc := &Scenario{
		Stages:     1,
		MeanDemand: 0.5,
		Curve:      []RatePoint{{At: 0, Rate: 0.1}, {At: 1000, Rate: 0.1}, {At: 1000.001, Rate: 1.0}},
		Cohorts:    []Cohort{{Name: "all", Share: 1, DemandScale: 1, Resolution: 100}},
		Horizon:    2000,
		Seed:       3,
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := sc.RecordTrace(&buf); err != nil {
		t.Fatal(err)
	}
	tr, _ := OpenTrace(bytes.NewReader(buf.Bytes()))
	var lo, hi int
	var rec TraceRecord
	for tr.Next(&rec) == nil {
		if rec.Arrival < 1000 {
			lo++
		} else {
			hi++
		}
	}
	ratio := float64(hi) / float64(lo)
	if ratio < 7 || ratio > 13 {
		t.Fatalf("arrival ratio across rate step = %v (lo %d, hi %d), want ≈10", ratio, lo, hi)
	}
}
