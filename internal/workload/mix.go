package workload

import (
	"fmt"

	"feasregion/internal/des"
	"feasregion/internal/dist"
	"feasregion/internal/task"
)

// ClassSpec describes one request class in a mixed workload: a Poisson
// stream with its own demand profile, deadline, and semantic importance
// (the webserver and TSCE scenarios are mixes of such classes).
type ClassSpec struct {
	// Name labels instances (Task.Class).
	Name string
	// Rate is the class's Poisson arrival rate.
	Rate float64
	// Demands are per-stage demand distributions.
	Demands []dist.Distribution
	// Deadline is the relative end-to-end deadline distribution.
	Deadline dist.Distribution
	// Importance is the semantic importance of instances.
	Importance float64
}

// validate panics on an impossible class.
func (c ClassSpec) validate(stages int) {
	if c.Rate <= 0 {
		panic(fmt.Sprintf("workload: class %q needs a positive rate", c.Name))
	}
	if len(c.Demands) != stages {
		panic(fmt.Sprintf("workload: class %q has %d demand distributions for %d stages", c.Name, len(c.Demands), stages))
	}
	if c.Deadline == nil {
		panic(fmt.Sprintf("workload: class %q needs a deadline distribution", c.Name))
	}
}

// MixedSource generates a superposition of per-class Poisson streams.
type MixedSource struct {
	counts map[string]uint64
}

// NewMixedSource schedules all classes' arrivals into offer until
// horizon. Task IDs start at firstID and are unique across classes.
func NewMixedSource(sim *des.Simulator, stages int, classes []ClassSpec, seed int64, firstID task.ID, horizon des.Time, offer func(*task.Task)) *MixedSource {
	if stages <= 0 {
		panic(fmt.Sprintf("workload: mixed source needs stages, got %d", stages))
	}
	if len(classes) == 0 {
		panic("workload: mixed source needs at least one class")
	}
	if offer == nil {
		panic("workload: nil offer sink")
	}
	ms := &MixedSource{counts: map[string]uint64{}}
	root := dist.NewRNG(seed)
	id := firstID
	nextID := func() task.ID {
		v := id
		id++
		return v
	}
	for _, c := range classes {
		c := c
		c.validate(stages)
		stream := root.Split()
		var arrive func()
		at := 0.0
		arrive = func() {
			at += stream.ExpFloat64() / c.Rate
			if at > horizon {
				return
			}
			releaseAt := at
			taskID := nextID()
			sim.At(releaseAt, func() {
				demands := make([]float64, stages)
				for j, d := range c.Demands {
					demands[j] = d.Sample(stream)
				}
				t := task.Chain(taskID, releaseAt, c.Deadline.Sample(stream), demands...)
				t.Class = c.Name
				t.Importance = c.Importance
				ms.counts[c.Name]++
				offer(t)
				arrive()
			})
		}
		arrive()
	}
	return ms
}

// Generated returns per-class arrival counts so far.
func (ms *MixedSource) Generated() map[string]uint64 {
	out := make(map[string]uint64, len(ms.counts))
	for k, v := range ms.counts {
		out[k] = v
	}
	return out
}
