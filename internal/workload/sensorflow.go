package workload

import (
	"feasregion/internal/dist"
	"feasregion/internal/task"
)

// SensorFlow builds the §5 back-end data-flow task graph: "many of the
// tactical applications are implemented in a data flow architecture
// consisting of multiple subtasks that may or may not be colocated on
// the same processor ... 4-6 subtasks with possible branching and
// rejoining". The shape is
//
//	ingest -> {classify, track} -> fuse -> display
//
// over five resources, with optional extra parallel analysis branches.
type SensorFlowSpec struct {
	// Resources assigns the five roles to resource indices:
	// [ingest, classify, track, fuse, display].
	Resources [5]int
	// MeanDemands are mean computation times per role; actual demands
	// are exponential around them.
	MeanDemands [5]float64
	// ExtraBranches adds this many additional parallel analysis nodes
	// between ingest and fuse, cycling over the classify/track
	// resources (making 6-node flows for ExtraBranches = 1).
	ExtraBranches int
}

// DefaultSensorFlow returns a 5-subtask flow over resources 0..4.
func DefaultSensorFlow() SensorFlowSpec {
	return SensorFlowSpec{
		Resources:   [5]int{0, 1, 2, 3, 4},
		MeanDemands: [5]float64{0.4, 0.8, 0.8, 0.3, 0.5},
	}
}

// Build draws one flow instance's graph with randomized demands.
func (s SensorFlowSpec) Build(g *dist.RNG) *task.Graph {
	gr := task.NewGraph()
	draw := func(mean float64) task.Subtask {
		return task.NewSubtask(g.ExpFloat64() * mean)
	}
	ingest := gr.AddNode(s.Resources[0], draw(s.MeanDemands[0]))
	fuseSub := draw(s.MeanDemands[3])
	classify := gr.AddNode(s.Resources[1], draw(s.MeanDemands[1]))
	track := gr.AddNode(s.Resources[2], draw(s.MeanDemands[2]))
	branches := []int{classify, track}
	for b := 0; b < s.ExtraBranches; b++ {
		res := s.Resources[1+b%2]
		branches = append(branches, gr.AddNode(res, draw(s.MeanDemands[1+b%2])))
	}
	fuse := gr.AddNode(s.Resources[3], fuseSub)
	display := gr.AddNode(s.Resources[4], draw(s.MeanDemands[4]))
	for _, b := range branches {
		gr.AddEdge(ingest, b)
		gr.AddEdge(b, fuse)
	}
	gr.AddEdge(fuse, display)
	return gr
}

// NodeCount returns the number of subtasks per flow.
func (s SensorFlowSpec) NodeCount() int { return 5 + s.ExtraBranches }
