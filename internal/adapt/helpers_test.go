package adapt

import (
	"testing"

	"feasregion/internal/core"
	"feasregion/internal/des"
)

// newSimController builds a one-stage simulation controller on a fresh
// simulator for loop-integration tests.
func newSimController(t *testing.T) *core.Controller {
	t.Helper()
	return core.NewController(des.New(), core.NewRegion(1), nil)
}
