// Package adapt closes the loop between observed telemetry and the
// admission-control inputs of the feasible region (paper Eqs. 12/13/15):
//
//	Σ_j f(U_j) ≤ α · (1 − Σ_j β_j)
//
// The region test is only as sound as the constants fed into it — the
// per-stage demand estimates C_ij behind U_j(t) = Σ C_ij/D_i, the
// normalized blocking terms β_j (Eq. 15), and the urgency-inversion
// parameter α (Eq. 12: D_least/D_most for non-deadline-monotonic
// policies, 1 for DM per Eq. 13). All three are usually static
// configuration; this package estimates them online from the
// observability instruments (internal/metrics histograms, core.Guard
// overrun counters) and feeds them back through a RegionSink
// (core.Controller.SetRegionInputs or online.Controller.SetRegionInputs)
// and a wrapped core.Estimator.
//
// Three estimators run behind one Loop, each a tick-driven feedback
// controller with asymmetric hysteresis (tighten fast, relax slow) so
// the admission bound reacts promptly to trouble and recovers
// cautiously:
//
//   - The β estimator reads the tail quantile (default p99) of each
//     stage's sojourn-time histogram, subtracts the service-time tail
//     and the queueing delay Theorem 1 already accounts for
//     (f(U_j)·Dref), and attributes the unexplained excess to blocking:
//     β_j rises toward excess/Dref (capped), shrinking the bound
//     α·(1−Σβ_j) exactly as a measured B_ij/D_i would in Eq. 15.
//
//   - The demand estimator watches per-class overrun detections from
//     core.Guard against per-class admission counts and applies
//     multiplicative-increase/additive-decrease: a class whose overrun
//     rate exceeds the target gets its declared C_ij inflated (via
//     WrapEstimator) so the synthetic utilization it books reflects
//     what it actually consumes — replacing the static guard
//     OverrunTolerance knob with a measured, per-class correction.
//
//   - The α estimator compares each stage's observed tail delay with
//     Theorem 1's prediction f(U_j)·Dref. A platform running outside
//     its model (fault or slowdown window) shows delays inflated by
//     ρ_j = observed/predicted; keeping Σ ρ_j·f(U_j) ≤ α requires
//     shrinking the applied parameter to α·min_j(predicted/observed),
//     clamped to a floor (see THEORY.md for the derivation from
//     Eq. 12).
//
// Soundness: relative to the configured base region, adaptive β_j only
// grows (never below the configured blocking terms) and adaptive α only
// shrinks, so the applied region is always a subset of the base region
// — every point the adaptive test admits, the static test would have
// admitted too, and Theorem 1's guarantee carries over with the
// tightened constants. Hysteresis bounds oscillation: the tighten
// weight must be at least the relax weight, so the bound can only
// tighten faster than it relaxes.
package adapt
