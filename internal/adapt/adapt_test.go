package adapt

import (
	"math"
	"testing"

	"feasregion/internal/core"
	"feasregion/internal/task"
)

// fakeSink records every region push.
type fakeSink struct {
	alphas []float64
	betas  [][]float64
}

func (s *fakeSink) SetRegionInputs(alpha float64, betas []float64) {
	s.alphas = append(s.alphas, alpha)
	s.betas = append(s.betas, betas)
}

// fakeTelemetry is a hand-driven Sources backend.
type fakeTelemetry struct {
	sojourn []float64 // per-stage tail sojourn
	service []float64 // per-stage tail service
	count   []uint64
	util    []float64
	ov      map[string]uint64
	ad      map[string]uint64
}

func (f *fakeTelemetry) sources() Sources {
	return Sources{
		SojournQuantile:  func(j int, _ float64) float64 { return f.sojourn[j] },
		ServiceQuantile:  func(j int, _ float64) float64 { return f.service[j] },
		SojournCount:     func(j int) uint64 { return f.count[j] },
		StageUtilization: func(j int) float64 { return f.util[j] },
		OverrunsByClass:  func() map[string]uint64 { return f.ov },
		AdmittedByClass:  func() map[string]uint64 { return f.ad },
	}
}

func newFakeTelemetry(stages int) *fakeTelemetry {
	return &fakeTelemetry{
		sojourn: make([]float64, stages),
		service: make([]float64, stages),
		count:   make([]uint64, stages),
		util:    make([]float64, stages),
		ov:      map[string]uint64{},
		ad:      map[string]uint64{},
	}
}

// TestBetaTightensFastRelaxesSlow checks the blocking estimator's
// asymmetric hysteresis: a blocking excess pulls β up at TightenWeight,
// and its disappearance releases it at the (smaller) RelaxWeight.
func TestBetaTightensFastRelaxesSlow(t *testing.T) {
	tel := newFakeTelemetry(1)
	sink := &fakeSink{}
	l := NewLoop(Config{
		DeadlineRef: 10,
		Beta:        BetaConfig{Enabled: true, MinSamples: 1, TightenWeight: 0.5, RelaxWeight: 0.1, Cap: 0.5},
	}, core.NewRegion(1), sink, tel.sources())

	// 2s of unexplained delay against a 10s deadline: target β = 0.2.
	tel.count[0] = 100
	tel.sojourn[0] = 2.5
	tel.service[0] = 0.5
	l.Tick()
	b1 := l.Betas()[0]
	if math.Abs(b1-0.1) > 1e-12 { // 0 + 0.5·(0.2−0)
		t.Fatalf("β after one tighten tick = %v, want 0.1", b1)
	}
	if len(sink.alphas) != 1 {
		t.Fatalf("sink pushes = %d, want 1", len(sink.alphas))
	}

	// Blocking vanishes: relax runs at one fifth the tighten rate.
	tel.count[0] = 200
	tel.sojourn[0] = 0.5
	l.Tick()
	b2 := l.Betas()[0]
	if math.Abs(b2-0.09) > 1e-12 { // 0.1 + 0.1·(0−0.1)
		t.Fatalf("β after one relax tick = %v, want 0.09", b2)
	}
	drop := b1 - b2
	rise := b1 - 0
	if drop >= rise {
		t.Fatalf("relax step %v not slower than tighten step %v", drop, rise)
	}
}

// TestBetaRespectsBaseAndCap checks β never drops below the configured
// blocking terms and never exceeds the cap.
func TestBetaRespectsBaseAndCap(t *testing.T) {
	tel := newFakeTelemetry(1)
	sink := &fakeSink{}
	base := core.NewRegion(1).WithBetas([]float64{0.1})
	l := NewLoop(Config{
		DeadlineRef: 10,
		Beta:        BetaConfig{Enabled: true, MinSamples: 1, TightenWeight: 1, RelaxWeight: 1, Cap: 0.3},
	}, base, sink, tel.sources())

	// Huge excess: β pins at the cap, not at excess/Dref.
	tel.count[0] = 10
	tel.sojourn[0] = 50
	l.Tick()
	if got := l.Betas()[0]; got != 0.3 {
		t.Fatalf("β = %v, want cap 0.3", got)
	}
	// No delay at all: β floors at the configured base, not zero.
	tel.count[0] = 20
	tel.sojourn[0] = 0
	l.Tick()
	if got := l.Betas()[0]; got != 0.1 {
		t.Fatalf("β = %v, want base 0.1", got)
	}
}

// TestBetaIgnoresPredictedQueueing checks delay that Theorem 1 already
// accounts for (f(U_j)·Dref) is not misread as blocking.
func TestBetaIgnoresPredictedQueueing(t *testing.T) {
	tel := newFakeTelemetry(1)
	l := NewLoop(Config{
		DeadlineRef: 10,
		Beta:        BetaConfig{Enabled: true, MinSamples: 1, TightenWeight: 1, RelaxWeight: 1},
	}, core.NewRegion(1), &fakeSink{}, tel.sources())
	tel.count[0] = 10
	tel.util[0] = 0.5                                    // f(0.5) = 0.75 → predicted delay 7.5s
	tel.sojourn[0] = core.StageDelayFactor(0.5)*10 - 0.5 // within prediction
	l.Tick()
	if got := l.Betas()[0]; got != 0 {
		t.Fatalf("β = %v for fully-predicted queueing, want 0", got)
	}
}

// TestBetaWarmupAndStaleness checks MinSamples gating and that a stage
// with no fresh samples holds its estimate.
func TestBetaWarmupAndStaleness(t *testing.T) {
	tel := newFakeTelemetry(1)
	l := NewLoop(Config{
		DeadlineRef: 10,
		Beta:        BetaConfig{Enabled: true, MinSamples: 50, TightenWeight: 1, RelaxWeight: 1, Cap: 0.5},
	}, core.NewRegion(1), &fakeSink{}, tel.sources())
	tel.sojourn[0] = 5
	tel.count[0] = 49
	l.Tick()
	if got := l.Betas()[0]; got != 0 {
		t.Fatalf("β moved during warmup: %v", got)
	}
	tel.count[0] = 50
	l.Tick()
	moved := l.Betas()[0]
	if moved == 0 {
		t.Fatal("β did not move once MinSamples was reached")
	}
	// Same count again (no new completions): the estimate holds even
	// though the instantaneous signal changed.
	tel.sojourn[0] = 0
	l.Tick()
	if got := l.Betas()[0]; got != moved {
		t.Fatalf("β = %v moved without fresh samples, want %v", got, moved)
	}
}

// TestAlphaShrinksAndFloors checks the α estimator shrinks when
// observed delays exceed the Theorem 1 prediction and respects the
// floor.
func TestAlphaShrinksAndFloors(t *testing.T) {
	tel := newFakeTelemetry(2)
	sink := &fakeSink{}
	l := NewLoop(Config{
		DeadlineRef: 10,
		Alpha:       AlphaConfig{Enabled: true, MinSamples: 1, TightenWeight: 1, RelaxWeight: 1, Floor: 0.3, Margin: 1},
	}, core.NewRegion(2), sink, tel.sources())

	// Stage 0 delayed 4× past prediction (U = 0.5 → f = 0.75 → 7.5s
	// predicted; 30s observed): implied α = 0.25, below the 0.3 floor.
	tel.count = []uint64{10, 10}
	tel.util = []float64{0.5, 0.5}
	tel.sojourn = []float64{30, 1}
	l.Tick()
	if got := l.Alpha(); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("α = %v, want floor 0.3", got)
	}
	// Delay recedes: with full weights α recovers to the base in one
	// tick but never above it.
	tel.count = []uint64{20, 20}
	tel.sojourn = []float64{1, 1}
	l.Tick()
	if got := l.Alpha(); got != 1 {
		t.Fatalf("α = %v after recovery, want base 1", got)
	}
}

// TestAlphaShrinkFastRecoverSlow checks the estimator's asymmetry on α.
func TestAlphaShrinkFastRecoverSlow(t *testing.T) {
	tel := newFakeTelemetry(1)
	l := NewLoop(Config{
		DeadlineRef: 10,
		Alpha:       AlphaConfig{Enabled: true, MinSamples: 1, TightenWeight: 0.5, RelaxWeight: 0.1, Floor: 0.1, Margin: 1},
	}, core.NewRegion(1), &fakeSink{}, tel.sources())
	tel.count[0] = 10
	tel.util[0] = 0.5
	tel.sojourn[0] = 15 // implied = 7.5/15 = 0.5
	l.Tick()
	a1 := l.Alpha()
	if math.Abs(a1-0.75) > 1e-12 { // 1 + 0.5·(0.5−1)
		t.Fatalf("α after one shrink tick = %v, want 0.75", a1)
	}
	tel.count[0] = 20
	tel.sojourn[0] = 1 // back to nominal
	l.Tick()
	a2 := l.Alpha()
	if math.Abs(a2-0.775) > 1e-12 { // 0.75 + 0.1·(1−0.75)
		t.Fatalf("α after one recover tick = %v, want 0.775", a2)
	}
	if (a2 - a1) >= (1 - a1) {
		t.Fatal("recovery not slower than shrink")
	}
}

// TestDemandMIAD checks the per-class estimator: multiplicative
// increase past the target rate, additive decrease on quiet windows,
// capped, and applied through WrapEstimator.
func TestDemandMIAD(t *testing.T) {
	tel := newFakeTelemetry(1)
	l := NewLoop(Config{
		Demand: DemandConfig{Enabled: true, TargetRate: 0.1, Increase: 2, Decrease: 0.5, Max: 4, MinSamples: 10},
	}, core.NewRegion(1), &fakeSink{}, tel.sources())

	est := l.WrapEstimator(core.ActualDemand)
	liar := task.Chain(1, 0, 10, 1)
	liar.Class = "batch"
	honest := task.Chain(2, 0, 10, 1)
	honest.Class = "interactive"

	// Window 1: batch overruns 50% of admissions, interactive never.
	tel.ad = map[string]uint64{"batch": 20, "interactive": 20}
	tel.ov = map[string]uint64{"batch": 10}
	l.Tick()
	if got := l.ClassInflation("batch"); got != 2 {
		t.Fatalf("batch inflation = %v, want 2", got)
	}
	if got := l.ClassInflation("interactive"); got != 1 {
		t.Fatalf("interactive inflation = %v, want 1", got)
	}
	if got := est(liar, 0); got != 2 {
		t.Fatalf("wrapped estimate = %v, want 2 (declared 1 × inflation 2)", got)
	}
	if got := est(honest, 0); got != 1 {
		t.Fatalf("honest estimate = %v, want declared 1", got)
	}

	// Windows 2–3: batch keeps overrunning → ×2 each, capped at 4.
	tel.ad["batch"] = 40
	tel.ov["batch"] = 25
	l.Tick()
	tel.ad["batch"] = 60
	tel.ov["batch"] = 40
	l.Tick()
	if got := l.ClassInflation("batch"); got != 4 {
		t.Fatalf("batch inflation = %v, want cap 4", got)
	}

	// Quiet window: additive decrease.
	tel.ad["batch"] = 80
	l.Tick()
	if got := l.ClassInflation("batch"); got != 3.5 {
		t.Fatalf("batch inflation = %v after quiet window, want 3.5", got)
	}

	// A window smaller than MinSamples accumulates instead of judging.
	tel.ad["batch"] = 85
	tel.ov["batch"] = 45
	l.Tick()
	if got := l.ClassInflation("batch"); got != 3.5 {
		t.Fatalf("batch inflation = %v after tiny window, want unchanged 3.5", got)
	}
	st := l.Snapshot()
	if st.Ticks != 5 || st.InflationByClass["batch"] != 3.5 {
		t.Fatalf("snapshot = %+v, want 5 ticks, batch 3.5", st)
	}
}

// TestConfigValidation checks the hysteresis invariant (tighten ≥
// relax) and source requirements are enforced at construction.
func TestConfigValidation(t *testing.T) {
	tel := newFakeTelemetry(1)
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	expectPanic("beta relax > tighten", func() {
		NewLoop(Config{DeadlineRef: 1, Beta: BetaConfig{Enabled: true, TightenWeight: 0.1, RelaxWeight: 0.5}},
			core.NewRegion(1), &fakeSink{}, tel.sources())
	})
	expectPanic("alpha relax > tighten", func() {
		NewLoop(Config{DeadlineRef: 1, Alpha: AlphaConfig{Enabled: true, TightenWeight: 0.1, RelaxWeight: 0.5}},
			core.NewRegion(1), &fakeSink{}, tel.sources())
	})
	expectPanic("missing deadline ref", func() {
		NewLoop(Config{Beta: BetaConfig{Enabled: true}}, core.NewRegion(1), &fakeSink{}, tel.sources())
	})
	expectPanic("nil sink", func() {
		NewLoop(Config{}, core.NewRegion(1), nil, tel.sources())
	})
	expectPanic("missing sojourn sources", func() {
		NewLoop(Config{DeadlineRef: 1, Beta: BetaConfig{Enabled: true}}, core.NewRegion(1), &fakeSink{}, Sources{})
	})
	expectPanic("missing class sources", func() {
		NewLoop(Config{Demand: DemandConfig{Enabled: true}}, core.NewRegion(1), &fakeSink{}, Sources{})
	})
	expectPanic("demand additive increase", func() {
		NewLoop(Config{Demand: DemandConfig{Enabled: true, Increase: 0.5}},
			core.NewRegion(1), &fakeSink{}, tel.sources())
	})
	expectPanic("base beta above cap", func() {
		NewLoop(Config{DeadlineRef: 1, Beta: BetaConfig{Enabled: true, Cap: 0.1}},
			core.NewRegion(1).WithBetas([]float64{0.2}), &fakeSink{}, tel.sources())
	})
}

// TestLoopDrivesController checks the loop end-to-end against a real
// simulation controller: a tightened region rejects a task the base
// region would admit, and the applied region is always a subset of the
// base region.
func TestLoopDrivesController(t *testing.T) {
	tel := newFakeTelemetry(1)
	simCtrl := newSimController(t)
	l := NewLoop(Config{
		DeadlineRef: 10,
		Beta:        BetaConfig{Enabled: true, MinSamples: 1, TightenWeight: 1, RelaxWeight: 1, Cap: 0.6},
		Alpha:       AlphaConfig{Enabled: true, MinSamples: 1, TightenWeight: 1, RelaxWeight: 1, Floor: 0.5, Margin: 1},
	}, simCtrl.Region(), simCtrl, tel.sources())

	// Healthy telemetry: nothing changes, the base region admits.
	tel.count[0] = 10
	tel.sojourn[0] = 0.1
	l.Tick()
	if !simCtrl.WouldAdmit(task.Chain(1, 0, 4, 1)) {
		t.Fatal("healthy loop rejected a baseline-admissible task")
	}
	// Pathological telemetry: β → 0.6 and α → 0.5 give bound 0.2.
	tel.count[0] = 20
	tel.sojourn[0] = 100
	l.Tick()
	if got, want := simCtrl.Region().Bound(), 0.5*(1-0.6); math.Abs(got-want) > 1e-12 {
		t.Fatalf("controller bound = %v, want %v", got, want)
	}
	if simCtrl.WouldAdmit(task.Chain(2, 0, 4, 1)) {
		t.Fatal("tightened region admitted f(0.25) ≈ 0.29 > 0.2")
	}
	if b := simCtrl.Region().Bound(); b > 1 {
		t.Fatalf("applied bound %v exceeds the base bound", b)
	}
}
