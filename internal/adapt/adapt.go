package adapt

import (
	"fmt"
	"math"
	"sync"
	"time"

	"feasregion/internal/core"
	"feasregion/internal/des"
	"feasregion/internal/metrics"
	"feasregion/internal/task"
)

// RegionSink receives the loop's region updates. Both
// core.Controller and online.Controller implement it.
type RegionSink interface {
	// SetRegionInputs replaces the region's urgency-inversion parameter
	// α and per-stage blocking terms β_j (nil betas keeps the current
	// terms).
	SetRegionInputs(alpha float64, betas []float64)
}

// Sources bundles the telemetry feeds the estimators read. Quantile and
// count functions are typically closures over internal/metrics
// histograms; the per-class maps come from core.Guard.DetectedByClass
// and the embedding system's admission accounting. Every configured
// function must be safe to call from the loop's driving goroutine.
type Sources struct {
	// SojournQuantile returns the q-quantile of stage j's sojourn-time
	// (submit → completion) distribution, in seconds. Required when the
	// β or α estimator is enabled.
	SojournQuantile func(stage int, q float64) float64
	// SojournCount returns the number of sojourn observations at stage
	// j; estimators act only on stages with fresh samples. Required
	// when the β or α estimator is enabled.
	SojournCount func(stage int) uint64
	// ServiceQuantile, when non-nil, returns the q-quantile of stage
	// j's pure service-time distribution; the estimators then use
	// sojourn − service (time spent not executing) as the delay signal,
	// which separates blocking/queueing from the work itself.
	ServiceQuantile func(stage int, q float64) float64
	// StageUtilization, when non-nil, returns stage j's current
	// synthetic utilization U_j(t); the estimators subtract Theorem 1's
	// predicted delay f(U_j)·DeadlineRef from the observed delay so
	// healthy queueing is not misread as blocking or urgency inversion.
	StageUtilization func(stage int) float64
	// OverrunsByClass returns cumulative overrun detections per task
	// class (core.Guard.DetectedByClass). Required when the demand
	// estimator is enabled.
	OverrunsByClass func() map[string]uint64
	// AdmittedByClass returns cumulative admitted-task counts per
	// class. Required when the demand estimator is enabled.
	AdmittedByClass func() map[string]uint64
}

// BetaConfig tunes the blocking estimator.
type BetaConfig struct {
	// Enabled turns the estimator on.
	Enabled bool
	// Quantile is the sojourn-tail quantile observed (default 0.99).
	Quantile float64
	// Cap bounds each adaptive β_j (default 0.25). It must be at least
	// every base blocking term: the estimator never relaxes β_j below
	// the configured base, only tightens above it.
	Cap float64
	// TightenWeight is the smoothing weight applied when the estimate
	// rises (default 0.5); RelaxWeight when it falls (default 0.05).
	// TightenWeight ≥ RelaxWeight is enforced: the bound can only
	// tighten faster than it relaxes.
	TightenWeight float64
	// RelaxWeight is the downward smoothing weight (default 0.05).
	RelaxWeight float64
	// MinSamples is the number of sojourn observations a stage needs
	// before its β moves (default 20).
	MinSamples uint64
}

// DemandConfig tunes the per-class demand estimator
// (multiplicative-increase/additive-decrease).
type DemandConfig struct {
	// Enabled turns the estimator on.
	Enabled bool
	// TargetRate is the tolerated overruns-per-admission rate; a class
	// above it gets its demand estimates inflated (default 0.05).
	TargetRate float64
	// Increase is the multiplicative inflation step, > 1 (default 1.5).
	Increase float64
	// Decrease is the additive recovery step per quiet window, > 0
	// (default 0.125).
	Decrease float64
	// Max caps the per-class inflation factor (default 8).
	Max float64
	// MinSamples is the number of admissions a class needs inside one
	// window before its rate is judged (default 10); smaller windows
	// accumulate into the next tick.
	MinSamples uint64
}

// AlphaConfig tunes the urgency-inversion estimator.
type AlphaConfig struct {
	// Enabled turns the estimator on.
	Enabled bool
	// Quantile is the delay-tail quantile compared against Theorem 1's
	// prediction (default 0.99).
	Quantile float64
	// Floor bounds the adaptive α from below (default 0.25); the
	// estimator never raises α above the configured base.
	Floor float64
	// Margin is the observed/predicted delay ratio tolerated before α
	// shrinks (default 1.5): measurement noise and the conservatism of
	// Theorem 1 itself should not read as urgency inversion.
	Margin float64
	// MinPredicted floors the predicted delay at MinPredicted·DeadlineRef
	// (default 0.05), so near-idle stages with coarse histograms do not
	// divide by ~zero.
	MinPredicted float64
	// TightenWeight (default 0.5) and RelaxWeight (default 0.05) are
	// the shrink/recover smoothing weights; TightenWeight ≥ RelaxWeight
	// is enforced.
	TightenWeight float64
	// RelaxWeight is the upward (recovery) smoothing weight.
	RelaxWeight float64
	// MinSamples is the number of sojourn observations a stage needs
	// before it votes on α (default 20).
	MinSamples uint64
}

// Config assembles the three estimators of a Loop. Zero-valued tuning
// fields take the documented defaults; invalid values panic at
// construction (misconfiguring the safety loop is a wiring bug).
type Config struct {
	// DeadlineRef is the reference end-to-end deadline, in seconds,
	// used to normalize observed delays (the D in β_j = B_j/D and in
	// Theorem 1's f(U_j)·D bound). Typically the workload's mean or
	// shortest deadline. Required when the β or α estimator is enabled.
	DeadlineRef float64
	// Beta configures the blocking estimator.
	Beta BetaConfig
	// Demand configures the per-class demand estimator.
	Demand DemandConfig
	// Alpha configures the urgency-inversion estimator.
	Alpha AlphaConfig
}

// withDefaults validates cfg and fills zero fields with defaults.
func (cfg Config) withDefaults() Config {
	fill := func(v *float64, def float64) {
		if *v == 0 {
			*v = def
		}
	}
	fillU := func(v *uint64, def uint64) {
		if *v == 0 {
			*v = def
		}
	}
	b := &cfg.Beta
	fill(&b.Quantile, 0.99)
	fill(&b.Cap, 0.25)
	fill(&b.TightenWeight, 0.5)
	fill(&b.RelaxWeight, 0.05)
	fillU(&b.MinSamples, 20)
	a := &cfg.Alpha
	fill(&a.Quantile, 0.99)
	fill(&a.Floor, 0.25)
	fill(&a.Margin, 1.5)
	fill(&a.MinPredicted, 0.05)
	fill(&a.TightenWeight, 0.5)
	fill(&a.RelaxWeight, 0.05)
	fillU(&a.MinSamples, 20)
	d := &cfg.Demand
	fill(&d.TargetRate, 0.05)
	fill(&d.Increase, 1.5)
	fill(&d.Decrease, 0.125)
	fill(&d.Max, 8)
	fillU(&d.MinSamples, 10)

	if (cfg.Beta.Enabled || cfg.Alpha.Enabled) && (cfg.DeadlineRef <= 0 || math.IsNaN(cfg.DeadlineRef)) {
		panic(fmt.Sprintf("adapt: DeadlineRef must be positive when the β or α estimator is enabled, got %v", cfg.DeadlineRef))
	}
	if q := b.Quantile; q <= 0 || q >= 1 {
		panic(fmt.Sprintf("adapt: beta quantile %v must be in (0, 1)", q))
	}
	if b.Cap < 0 || math.IsNaN(b.Cap) {
		panic(fmt.Sprintf("adapt: beta cap %v must be non-negative", b.Cap))
	}
	if b.TightenWeight <= 0 || b.TightenWeight > 1 || b.RelaxWeight <= 0 || b.RelaxWeight > b.TightenWeight {
		panic(fmt.Sprintf("adapt: beta weights tighten=%v relax=%v must satisfy 0 < relax ≤ tighten ≤ 1 (tighten fast, relax slow)", b.TightenWeight, b.RelaxWeight))
	}
	if q := a.Quantile; q <= 0 || q >= 1 {
		panic(fmt.Sprintf("adapt: alpha quantile %v must be in (0, 1)", q))
	}
	if a.Floor <= 0 || a.Floor > 1 || math.IsNaN(a.Floor) {
		panic(fmt.Sprintf("adapt: alpha floor %v must be in (0, 1]", a.Floor))
	}
	if a.Margin < 1 || math.IsNaN(a.Margin) {
		panic(fmt.Sprintf("adapt: alpha margin %v must be ≥ 1", a.Margin))
	}
	if a.MinPredicted < 0 || math.IsNaN(a.MinPredicted) {
		panic(fmt.Sprintf("adapt: alpha MinPredicted %v must be non-negative", a.MinPredicted))
	}
	if a.TightenWeight <= 0 || a.TightenWeight > 1 || a.RelaxWeight <= 0 || a.RelaxWeight > a.TightenWeight {
		panic(fmt.Sprintf("adapt: alpha weights tighten=%v relax=%v must satisfy 0 < relax ≤ tighten ≤ 1 (shrink fast, recover slow)", a.TightenWeight, a.RelaxWeight))
	}
	if d.TargetRate < 0 || math.IsNaN(d.TargetRate) {
		panic(fmt.Sprintf("adapt: demand target rate %v must be non-negative", d.TargetRate))
	}
	if d.Increase <= 1 || math.IsNaN(d.Increase) {
		panic(fmt.Sprintf("adapt: demand increase %v must be > 1 (multiplicative)", d.Increase))
	}
	if d.Decrease <= 0 || math.IsNaN(d.Decrease) {
		panic(fmt.Sprintf("adapt: demand decrease %v must be > 0 (additive)", d.Decrease))
	}
	if d.Max < 1 || math.IsNaN(d.Max) {
		panic(fmt.Sprintf("adapt: demand inflation cap %v must be ≥ 1", d.Max))
	}
	return cfg
}

// LoopStats is a snapshot of the loop's activity and current outputs.
type LoopStats struct {
	// Ticks counts estimation passes.
	Ticks uint64
	// RegionUpdates counts ticks that pushed a changed (α, β) to the
	// sink.
	RegionUpdates uint64
	// Alpha is the currently applied urgency-inversion parameter.
	Alpha float64
	// Betas are the currently applied per-stage blocking terms.
	Betas []float64
	// InflationByClass maps each class with a non-nominal demand
	// inflation factor to that factor.
	InflationByClass map[string]float64
}

// Loop runs the three estimators against a base region and pushes
// updates to a sink. Construct with NewLoop; drive it by calling Tick
// periodically — from simulation events (ScheduleSim), a background
// goroutine (Start), or the embedding application's own cadence. All
// methods are safe for concurrent use.
type Loop struct {
	cfg  Config
	base core.Region
	sink RegionSink
	src  Sources

	mu        sync.Mutex
	alpha     float64
	betas     []float64 // applied per-stage blocking terms
	baseBetas []float64 // configured floor (zeros when base.Betas == nil)
	betaCount []uint64  // sojourn counts at last β update, per stage
	alphaSeen []uint64  // sojourn counts at last α vote, per stage
	implied   []float64 // last per-stage implied α ratio (1 = nominal)
	infl      map[string]float64
	lastOv    map[string]uint64
	lastAd    map[string]uint64
	stats     LoopStats

	// Instruments are nil (free no-ops) until SetMetrics.
	reg        *metrics.Registry
	metAlpha   *metrics.Gauge
	metBound   *metrics.Gauge
	metBeta    []*metrics.Gauge
	metUpdates *metrics.Counter
	metInfl    map[string]*metrics.Gauge
}

// NewLoop builds a loop over the base region. sink receives every
// region change (both controllers implement RegionSink); src must
// provide the feeds the enabled estimators need. The base region is the
// trust anchor: adaptive β_j never drops below base.Betas and adaptive
// α never exceeds base.Alpha, so the applied region is always a subset
// of the configured one.
func NewLoop(cfg Config, base core.Region, sink RegionSink, src Sources) *Loop {
	cfg = cfg.withDefaults()
	if sink == nil {
		panic("adapt: nil region sink")
	}
	if (cfg.Beta.Enabled || cfg.Alpha.Enabled) && (src.SojournQuantile == nil || src.SojournCount == nil) {
		panic("adapt: β/α estimators need SojournQuantile and SojournCount sources")
	}
	if cfg.Demand.Enabled && (src.OverrunsByClass == nil || src.AdmittedByClass == nil) {
		panic("adapt: demand estimator needs OverrunsByClass and AdmittedByClass sources")
	}
	l := &Loop{
		cfg:       cfg,
		base:      base,
		sink:      sink,
		src:       src,
		alpha:     base.Alpha,
		betas:     make([]float64, base.Stages),
		baseBetas: make([]float64, base.Stages),
		betaCount: make([]uint64, base.Stages),
		alphaSeen: make([]uint64, base.Stages),
		implied:   make([]float64, base.Stages),
		infl:      map[string]float64{},
		lastOv:    map[string]uint64{},
		lastAd:    map[string]uint64{},
	}
	for j := range l.implied {
		l.implied[j] = 1
	}
	if base.Betas != nil {
		copy(l.betas, base.Betas)
		copy(l.baseBetas, base.Betas)
	}
	if cfg.Beta.Enabled {
		for j, b := range l.baseBetas {
			if b > cfg.Beta.Cap {
				panic(fmt.Sprintf("adapt: base beta[%d] = %v exceeds the cap %v", j, b, cfg.Beta.Cap))
			}
		}
	}
	return l
}

// SetMetrics registers the loop's observability instruments: the
// applied α, per-stage β_j, the resulting bound, a region-update
// counter, and per-class demand inflation gauges (registered lazily as
// classes appear). A nil registry is a no-op.
func (l *Loop) SetMetrics(r *metrics.Registry) {
	if r == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.reg = r
	l.metAlpha = r.Gauge("feasregion_adapt_alpha", "urgency-inversion parameter α applied to the region")
	l.metBound = r.Gauge("feasregion_adapt_bound", "applied admission bound α·(1−Σβ_j)")
	l.metUpdates = r.Counter("feasregion_adapt_region_updates_total", "region-input pushes to the admission controller")
	l.metBeta = make([]*metrics.Gauge, l.base.Stages)
	for j := range l.metBeta {
		l.metBeta[j] = r.Gauge("feasregion_adapt_beta", "adaptive per-stage normalized blocking β_j", metrics.Stage(j))
		l.metBeta[j].Set(l.betas[j])
	}
	l.metInfl = map[string]*metrics.Gauge{}
	l.metAlpha.Set(l.alpha)
	l.metBound.Set(l.boundLocked())
}

// boundLocked returns the applied bound α·(1−Σβ).
func (l *Loop) boundLocked() float64 {
	sum := 0.0
	for _, b := range l.betas {
		sum += b
	}
	return l.alpha * (1 - sum)
}

// Tick runs one estimation pass: each enabled estimator reads its
// sources, applies hysteresis, and — when the applied (α, β) changed —
// the loop pushes the new inputs to the sink. Demand inflation factors
// take effect through WrapEstimator immediately, without a sink push.
func (l *Loop) Tick() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats.Ticks++
	changed := false
	if l.cfg.Beta.Enabled && l.updateBetasLocked() {
		changed = true
	}
	if l.cfg.Alpha.Enabled && l.updateAlphaLocked() {
		changed = true
	}
	if l.cfg.Demand.Enabled {
		l.updateDemandLocked()
	}
	if changed {
		l.stats.RegionUpdates++
		l.metUpdates.Inc()
		l.metAlpha.Set(l.alpha)
		if l.metBeta != nil {
			for j, g := range l.metBeta {
				g.Set(l.betas[j])
			}
		}
		l.metBound.Set(l.boundLocked())
		l.sink.SetRegionInputs(l.alpha, append([]float64(nil), l.betas...))
	}
}

// delaySignal returns the observed tail delay at the stage (sojourn
// minus service when a service source exists) and Theorem 1's predicted
// delay for its current utilization.
func (l *Loop) delaySignal(stage int, q float64) (observed, predicted float64) {
	observed = l.src.SojournQuantile(stage, q)
	if l.src.ServiceQuantile != nil {
		observed -= l.src.ServiceQuantile(stage, q)
		if observed < 0 {
			observed = 0
		}
	}
	u := 0.0
	if l.src.StageUtilization != nil {
		u = l.src.StageUtilization(stage)
	}
	predicted = core.StageDelayFactor(u) * l.cfg.DeadlineRef
	if math.IsInf(predicted, 1) {
		predicted = l.cfg.DeadlineRef
	}
	return observed, predicted
}

// updateBetasLocked runs the blocking estimator; it reports whether any
// β_j moved.
func (l *Loop) updateBetasLocked() bool {
	cfg := l.cfg.Beta
	moved := false
	for j := range l.betas {
		n := l.src.SojournCount(j)
		if n < cfg.MinSamples || n == l.betaCount[j] {
			continue // stale or warming up: hold the current estimate
		}
		l.betaCount[j] = n
		obs, pred := l.delaySignal(j, cfg.Quantile)
		excess := obs - pred
		if excess < 0 {
			excess = 0
		}
		target := l.baseBetas[j] + excess/l.cfg.DeadlineRef
		if target > cfg.Cap {
			target = cfg.Cap
		}
		cur := l.betas[j]
		w := cfg.RelaxWeight
		if target > cur {
			w = cfg.TightenWeight
		}
		next := cur + w*(target-cur)
		if next < l.baseBetas[j] {
			next = l.baseBetas[j]
		}
		if next != cur {
			l.betas[j] = next
			moved = true
		}
	}
	return moved
}

// updateAlphaLocked runs the urgency-inversion estimator; it reports
// whether α moved.
func (l *Loop) updateAlphaLocked() bool {
	cfg := l.cfg.Alpha
	for j := range l.implied {
		n := l.src.SojournCount(j)
		if n < cfg.MinSamples || n == l.alphaSeen[j] {
			continue // no fresh evidence: keep the stage's last vote
		}
		l.alphaSeen[j] = n
		obs, pred := l.delaySignal(j, cfg.Quantile)
		if floor := cfg.MinPredicted * l.cfg.DeadlineRef; pred < floor {
			pred = floor
		}
		ratio := 1.0
		if obs > cfg.Margin*pred {
			ratio = cfg.Margin * pred / obs
		}
		l.implied[j] = ratio
	}
	worst := 1.0
	for _, r := range l.implied {
		if r < worst {
			worst = r
		}
	}
	floor := cfg.Floor
	if floor > l.base.Alpha {
		floor = l.base.Alpha
	}
	target := l.base.Alpha * worst
	if target < floor {
		target = floor
	}
	cur := l.alpha
	w := cfg.RelaxWeight
	if target < cur {
		w = cfg.TightenWeight
	}
	next := cur + w*(target-cur)
	if next > l.base.Alpha {
		next = l.base.Alpha
	}
	if next < floor {
		next = floor
	}
	if next == cur {
		return false
	}
	l.alpha = next
	return true
}

// updateDemandLocked runs the per-class MIAD demand estimator.
func (l *Loop) updateDemandLocked() {
	cfg := l.cfg.Demand
	ov := l.src.OverrunsByClass()
	ad := l.src.AdmittedByClass()
	for class, admitted := range ad {
		dAdm := admitted - l.lastAd[class]
		if dAdm < cfg.MinSamples {
			continue // window too small: let it accumulate into the next tick
		}
		overruns := ov[class]
		dOv := overruns - l.lastOv[class]
		l.lastAd[class] = admitted
		l.lastOv[class] = overruns
		cur, ok := l.infl[class]
		if !ok {
			cur = 1
		}
		if float64(dOv) > cfg.TargetRate*float64(dAdm) {
			cur *= cfg.Increase
			if cur > cfg.Max {
				cur = cfg.Max
			}
		} else {
			cur -= cfg.Decrease
			if cur < 1 {
				cur = 1
			}
		}
		l.infl[class] = cur
		if l.reg != nil {
			g, ok := l.metInfl[class]
			if !ok {
				g = l.reg.Gauge("feasregion_adapt_class_inflation", "per-class demand inflation factor (1 = declared estimates trusted)", metrics.Label{Name: "class", Value: class})
				l.metInfl[class] = g
			}
			g.Set(cur)
		}
	}
}

// WrapEstimator returns an estimator that multiplies base's per-stage
// demand estimates by the task class's current inflation factor — the
// demand estimator's actuator. Install it on the admission controller
// (Controller.SetEstimator); the overrun guard's budgets follow
// automatically through EstimateFor, so a class inflated to its true
// demand stops tripping the guard and the factor decays back toward 1.
func (l *Loop) WrapEstimator(base core.Estimator) core.Estimator {
	if base == nil {
		panic("adapt: nil base estimator")
	}
	return func(t *task.Task, stage int) float64 {
		e := base(t, stage)
		if f := l.ClassInflation(t.Class); f > 1 {
			e *= f
		}
		return e
	}
}

// ClassInflation returns the class's current demand inflation factor
// (1 when the class is unknown or has never overrun its estimates).
// Online callers that size their own Request demands can apply it
// directly.
func (l *Loop) ClassInflation(class string) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if f, ok := l.infl[class]; ok {
		return f
	}
	return 1
}

// Alpha returns the currently applied urgency-inversion parameter.
func (l *Loop) Alpha() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.alpha
}

// Betas returns a copy of the currently applied per-stage blocking
// terms.
func (l *Loop) Betas() []float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]float64(nil), l.betas...)
}

// Snapshot returns the loop's counters and current outputs.
func (l *Loop) Snapshot() LoopStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.stats
	s.Alpha = l.alpha
	s.Betas = append([]float64(nil), l.betas...)
	s.InflationByClass = map[string]float64{}
	for k, v := range l.infl {
		if v != 1 {
			s.InflationByClass[k] = v
		}
	}
	return s
}

// ScheduleSim arranges for the loop to tick every interval of simulated
// time, from interval up to and including until — the simulation-side
// driver (a recurring self-scheduling event would keep the event
// calendar non-empty forever, so the horizon is explicit).
func (l *Loop) ScheduleSim(sim *des.Simulator, interval, until des.Time) {
	if interval <= 0 {
		panic(fmt.Sprintf("adapt: tick interval %v must be positive", interval))
	}
	for t := interval; t <= until; t += interval {
		sim.At(t, l.Tick)
	}
}

// Start ticks the loop every interval on a background goroutine until
// the returned stop function is called (idempotent; waits for the
// goroutine to exit) — the wall-clock driver for online controllers.
func (l *Loop) Start(interval time.Duration) (stop func()) {
	if interval <= 0 {
		panic("adapt: tick interval must be positive")
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				l.Tick()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-exited
	}
}
