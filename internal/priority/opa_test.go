package priority

import (
	"testing"

	"feasregion/internal/dist"
	"feasregion/internal/task"
)

// orderFeasible checks the brute-force ground truth: every task in the
// order (highest priority first) passes the test with exactly the tasks
// above it as its interference set.
func orderFeasible(order []Candidate, stages int, ts Test) bool {
	for i, c := range order {
		if !ts.Feasible(c, order[:i], stages) {
			return false
		}
	}
	return true
}

// permutations calls f with every permutation of cands; f returning
// true stops the enumeration early.
func permutations(cands []Candidate, f func([]Candidate) bool) bool {
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(cands) {
			return f(cands)
		}
		for i := k; i < len(cands); i++ {
			cands[k], cands[i] = cands[i], cands[k]
			if rec(k + 1) {
				cands[k], cands[i] = cands[i], cands[k]
				return true
			}
			cands[k], cands[i] = cands[i], cands[k]
		}
		return false
	}
	return rec(0)
}

// TestAssignMatchesBruteForce is the optimality property: over random
// small sets, Assign succeeds exactly when SOME total order passes the
// test, and its result is itself a passing order.
func TestAssignMatchesBruteForce(t *testing.T) {
	tests := []Test{RegionExact{}, AlphaPenalized{}, ResponseTime{}}
	g := dist.NewRNG(7)
	for trial := 0; trial < 300; trial++ {
		n := 1 + g.Intn(5)
		stages := 1 + g.Intn(3)
		cands := make([]Candidate, n)
		for i := range cands {
			d := make([]float64, stages)
			for j := range d {
				d[j] = 0.05 + 0.5*g.Float64()
			}
			cands[i] = Candidate{ID: task.ID(i + 1), Deadline: 0.5 + 4*g.Float64(), Demands: d}
		}
		for _, ts := range tests {
			work := append([]Candidate(nil), cands...)
			someOrder := permutations(work, func(o []Candidate) bool {
				return orderFeasible(o, stages, ts)
			})
			a, err := Assign(cands, stages, ts)
			if someOrder && err != nil {
				t.Fatalf("trial %d %s: a feasible order exists but Assign failed: %v", trial, ts.Name(), err)
			}
			if !someOrder && err == nil {
				t.Fatalf("trial %d %s: no feasible order exists but Assign returned one", trial, ts.Name())
			}
			if err == nil && !orderFeasible(a.Order, stages, ts) {
				t.Fatalf("trial %d %s: Assign returned an infeasible order", trial, ts.Name())
			}
		}
	}
}

// TestAssignRecoversDMOrder: on a lightly loaded set with distinct
// deadlines the search must return the deadline-monotonic order (the
// tie-break tries the largest deadline first at each level), earning
// α = 1, regardless of input order.
func TestAssignRecoversDMOrder(t *testing.T) {
	cands := []Candidate{
		{ID: 3, Deadline: 1.0, Demands: []float64{0.05, 0.05}},
		{ID: 1, Deadline: 3.0, Demands: []float64{0.05, 0.05}},
		{ID: 2, Deadline: 2.0, Demands: []float64{0.05, 0.05}},
	}
	a, err := Assign(cands, 2, RegionExact{})
	if err != nil {
		t.Fatalf("Assign: %v", err)
	}
	want := []task.ID{3, 2, 1} // ascending deadline = descending priority value order reversed
	for k, id := range want {
		if a.Order[k].ID != id {
			t.Fatalf("level %d: got task %d, want %d (order %+v)", k, a.Order[k].ID, id, a.Order)
		}
	}
	if !a.DMCompatible() || a.Alpha() != 1 {
		t.Fatalf("DM-compatible order should earn α = 1; got DMCompatible=%v α=%v", a.DMCompatible(), a.Alpha())
	}
	if p, ok := a.PriorityOf(3); !ok || p != 0 {
		t.Fatalf("PriorityOf(3) = %v, %v; want 0, true", p, ok)
	}
}

// TestAssignBreaksTiesStrictly: equal deadlines still get strict,
// deterministic levels (larger ID tried first at the lowest level).
func TestAssignBreaksTiesStrictly(t *testing.T) {
	cands := []Candidate{
		{ID: 1, Deadline: 1, Demands: []float64{0.1}},
		{ID: 2, Deadline: 1, Demands: []float64{0.1}},
		{ID: 3, Deadline: 1, Demands: []float64{0.1}},
	}
	a, err := Assign(cands, 1, RegionExact{})
	if err != nil {
		t.Fatalf("Assign: %v", err)
	}
	want := []task.ID{1, 2, 3} // lowest level filled by largest ID first
	for k, id := range want {
		if a.Order[k].ID != id {
			t.Fatalf("level %d: got %d, want %d", k, a.Order[k].ID, id)
		}
	}
	seen := map[float64]bool{}
	for _, c := range a.Order {
		p, _ := a.PriorityOf(c.ID)
		if seen[p] {
			t.Fatalf("priority %v assigned twice", p)
		}
		seen[p] = true
	}
	if !a.DMCompatible() {
		t.Fatal("strict levels over equal deadlines are DM-compatible")
	}
}

// TestResponseTimeRanksBeyondDeadlines is the worked example where the
// additive test makes a deliberate urgency inversion pay: the
// DM-compatible order fails, the inverted order passes, and the search
// finds it.
func TestResponseTimeRanksBeyondDeadlines(t *testing.T) {
	long := Candidate{ID: 1, Deadline: 5.05, Demands: []float64{2.5, 2.5}}
	short := Candidate{ID: 2, Deadline: 4.9, Demands: []float64{0.1, 0}}

	if orderFeasible([]Candidate{short, long}, 2, ResponseTime{}) {
		t.Fatal("the DM order should fail the additive test (R_long = 5.1 > 5.05)")
	}
	a, err := Assign([]Candidate{long, short}, 2, ResponseTime{})
	if err != nil {
		t.Fatalf("Assign: %v", err)
	}
	if a.Order[0].ID != 1 || a.Order[1].ID != 2 {
		t.Fatalf("want the inverted order (long above short), got %+v", a.Order)
	}
	if a.DMCompatible() {
		t.Fatal("the winning order inverts deadlines; DMCompatible must be false")
	}
	if al := a.Alpha(); al >= 1 || al < 4.9/5.05-1e-12 {
		t.Fatalf("α = %v, want 4.9/5.05", al)
	}
}

// TestAssignInfeasibleError: an overloaded set reports the level and
// the leftover tasks.
func TestAssignInfeasibleError(t *testing.T) {
	cands := []Candidate{
		{ID: 1, Deadline: 1, Demands: []float64{0.9}},
		{ID: 2, Deadline: 1, Demands: []float64{0.9}},
	}
	_, err := Assign(cands, 1, RegionExact{})
	ie, ok := err.(*InfeasibleError)
	if !ok {
		t.Fatalf("want *InfeasibleError, got %v", err)
	}
	if ie.Level != 1 || len(ie.Unassigned) != 2 {
		t.Fatalf("unexpected error detail: %+v", ie)
	}
	if ie.Error() == "" {
		t.Fatal("empty error string")
	}
}

// TestAssignTasksSetsPriorities: the task-slice wrapper writes searched
// levels into Task.Priority.
func TestAssignTasksSetsPriorities(t *testing.T) {
	ts := []*task.Task{
		task.Chain(1, 0, 2.0, 0.1, 0.1),
		task.Chain(2, 0, 1.0, 0.1, 0.1),
	}
	a, err := AssignTasks(ts, 2, nil)
	if err != nil {
		t.Fatalf("AssignTasks: %v", err)
	}
	if a.TestName() != "region-exact" {
		t.Fatalf("nil test should default to region-exact, got %s", a.TestName())
	}
	if ts[1].Priority != 0 || ts[0].Priority != 1 {
		t.Fatalf("priorities not applied: %v, %v", ts[0].Priority, ts[1].Priority)
	}
}

// TestExplicitOrderPolicy: listed tasks replay their recorded level,
// unlisted tasks fall back to deadline-monotonic.
func TestExplicitOrderPolicy(t *testing.T) {
	p := NewExplicitOrder([]task.ID{7, 8}, []float64{0, 1}, nil)
	if p.Name() != "explicit-order" || !p.Fixed() {
		t.Fatalf("unexpected policy identity: %s fixed=%v", p.Name(), p.Fixed())
	}
	g := dist.NewRNG(1)
	in := task.Chain(7, 0, 9, 0.1)
	if got := p.Assign(in, g); got != 0 {
		t.Fatalf("listed task priority = %v, want 0", got)
	}
	out := task.Chain(99, 0, 0.25, 0.1)
	if got := p.Assign(out, g); got != 0.25 {
		t.Fatalf("fallback priority = %v, want the deadline 0.25", got)
	}
}

// TestAssignmentPolicyRoundTrip: Assignment.Policy replays the search.
func TestAssignmentPolicyRoundTrip(t *testing.T) {
	cands := []Candidate{
		{ID: 1, Deadline: 2, Demands: []float64{0.1}},
		{ID: 2, Deadline: 1, Demands: []float64{0.1}},
	}
	a, err := Assign(cands, 1, RegionExact{})
	if err != nil {
		t.Fatalf("Assign: %v", err)
	}
	pol := a.Policy(nil)
	g := dist.NewRNG(1)
	if got := pol.Assign(task.Chain(2, 0, 1, 0.1), g); got != 0 {
		t.Fatalf("task 2 should hold the top level, got %v", got)
	}
	if got := pol.Assign(task.Chain(1, 0, 2, 0.1), g); got != 1 {
		t.Fatalf("task 1 should hold the bottom level, got %v", got)
	}
}

// TestTestsAreMonotone: removing tasks from the interference set never
// flips a passing verdict — the property Audsley's argument needs.
func TestTestsAreMonotone(t *testing.T) {
	g := dist.NewRNG(23)
	tests := []Test{RegionExact{}, AlphaPenalized{}, ResponseTime{}}
	for trial := 0; trial < 300; trial++ {
		stages := 1 + g.Intn(3)
		mk := func(id int) Candidate {
			d := make([]float64, stages)
			for j := range d {
				d[j] = 0.4 * g.Float64()
			}
			return Candidate{ID: task.ID(id), Deadline: 0.5 + 3*g.Float64(), Demands: d}
		}
		c := mk(0)
		n := 1 + g.Intn(4)
		higher := make([]Candidate, n)
		for i := range higher {
			higher[i] = mk(i + 1)
		}
		drop := g.Intn(n)
		smaller := append(append([]Candidate(nil), higher[:drop]...), higher[drop+1:]...)
		for _, ts := range tests {
			if ts.Feasible(c, higher, stages) && !ts.Feasible(c, smaller, stages) {
				t.Fatalf("trial %d: %s is not monotone", trial, ts.Name())
			}
		}
	}
}

// TestBetasTightenEveryTest: blocking terms shrink the budget of all
// three tests.
func TestBetasTightenEveryTest(t *testing.T) {
	c := Candidate{ID: 1, Deadline: 1, Demands: []float64{0.45}}
	if !(RegionExact{}).Feasible(c, nil, 1) {
		t.Fatal("unblocked candidate should pass region-exact")
	}
	if (RegionExact{Betas: []float64{0.5}}).Feasible(c, nil, 1) {
		t.Fatal("β = 0.5 should fail the candidate (f(0.45) ≈ 0.63 > 0.5)")
	}
	if !(ResponseTime{}).Feasible(c, nil, 1) {
		t.Fatal("unblocked candidate should pass response-time")
	}
	if (ResponseTime{Betas: []float64{0.6}}).Feasible(c, nil, 1) {
		t.Fatal("β = 0.6 should fail the additive test (0.45 > 0.4)")
	}
	if (AlphaPenalized{Betas: []float64{0.5}}).Feasible(c, nil, 1) {
		t.Fatal("β = 0.5 should fail alpha-penalized")
	}
}
