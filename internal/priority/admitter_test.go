package priority

import (
	"testing"

	"feasregion/internal/core"
	"feasregion/internal/dist"
	"feasregion/internal/task"
)

// invariant checks the Admitter's soundness invariant: every current
// task passes the test against its live equal-or-higher interference
// set.
func invariant(t *testing.T, a *Admitter) {
	t.Helper()
	for k := range a.cur {
		g := k
		for g+1 < len(a.cur) && a.cur[g+1].prio == a.cur[k].prio {
			g++
		}
		hi := make([]Candidate, 0, g)
		for i := 0; i <= g; i++ {
			if i == k {
				continue
			}
			hi = append(hi, Candidate{
				ID:       a.cur[i].id,
				Deadline: a.cur[i].deadline,
				Demands:  a.backing[i*a.stages : (i+1)*a.stages],
			})
		}
		c := Candidate{
			ID:       a.cur[k].id,
			Deadline: a.cur[k].deadline,
			Demands:  a.backing[k*a.stages : (k+1)*a.stages],
		}
		if !a.test.Feasible(c, hi, a.stages) {
			t.Fatalf("invariant violated: task %d fails its test in the committed order", c.ID)
		}
	}
}

// poissonStream drives a seeded aperiodic stream through the admitter
// and returns the admitted count, asserting the invariant throughout.
func poissonStream(t *testing.T, a *Admitter, seed int64, n int, load float64) int {
	t.Helper()
	g := dist.NewRNG(seed)
	stages := a.stages
	mean := load / (1.0 * float64(stages)) // per-stage demand at unit rate
	now, admitted := 0.0, 0
	for i := 0; i < n; i++ {
		now += g.ExpFloat64()
		demands := make([]float64, stages)
		for j := range demands {
			demands[j] = mean * g.ExpFloat64()
		}
		dl := 5 * float64(stages) * (0.5 + g.Float64())
		tk := task.Chain(task.ID(i+1), now, dl, demands...)
		if a.TryAdmit(tk) {
			admitted++
		}
		if i%64 == 0 {
			invariant(t, a)
		}
	}
	invariant(t, a)
	return admitted
}

// TestAdmitterInvariantUnderChurn: across modes and loads, every
// committed order keeps all current tasks schedulable by the test.
func TestAdmitterInvariantUnderChurn(t *testing.T) {
	for _, mode := range []Mode{ModeOPA, ModeDM, ModeRandom} {
		for _, load := range []float64{0.6, 1.2, 2.0} {
			a := NewAdmitter(3, mode, RegionExact{}, dist.NewRNG(11))
			got := poissonStream(t, a, 42, 800, load)
			st := a.Snapshot()
			if uint64(got) != st.Admitted {
				t.Fatalf("%v load %v: counted %d admits, snapshot says %d", mode, load, got, st.Admitted)
			}
			if st.Admitted+st.Rejected != 800 {
				t.Fatalf("%v load %v: admitted %d + rejected %d != 800", mode, load, st.Admitted, st.Rejected)
			}
			if got == 0 {
				t.Fatalf("%v load %v: nothing admitted", mode, load)
			}
		}
	}
}

// TestAdmitterDeterministic: identical seeds produce identical decision
// streams and identical final state.
func TestAdmitterDeterministic(t *testing.T) {
	for _, mode := range []Mode{ModeOPA, ModeDM, ModeRandom} {
		a1 := NewAdmitter(2, mode, nil, dist.NewRNG(5))
		a2 := NewAdmitter(2, mode, nil, dist.NewRNG(5))
		n1 := poissonStream(t, a1, 99, 500, 1.5)
		n2 := poissonStream(t, a2, 99, 500, 1.5)
		if n1 != n2 {
			t.Fatalf("%v: %d vs %d admitted on identical seeds", mode, n1, n2)
		}
		s1, s2 := a1.Snapshot(), a2.Snapshot()
		if s1 != s2 {
			t.Fatalf("%v: diverging snapshots %+v vs %+v", mode, s1, s2)
		}
	}
}

// TestAdmitterExpiry: a blocking reservation disappears once the
// arrival clock passes its absolute deadline.
func TestAdmitterExpiry(t *testing.T) {
	a := NewAdmitter(1, ModeOPA, RegionExact{}, nil)
	if !a.TryAdmit(task.Chain(1, 0, 1, 0.5)) {
		t.Fatal("first task should be admitted into an empty set")
	}
	// A second half-utilization task cannot fit alongside the first
	// (U = 1 at the stage).
	if a.TryAdmit(task.Chain(2, 0.1, 1, 0.5)) {
		t.Fatal("overlapping task should be rejected")
	}
	// After task 1's absolute deadline the slot is free again.
	if !a.TryAdmit(task.Chain(3, 1.5, 1, 0.5)) {
		t.Fatal("task arriving after the expiry should be admitted")
	}
	st := a.Snapshot()
	if st.Expired != 1 || st.Current != 1 {
		t.Fatalf("snapshot %+v: want 1 expired, 1 current", st)
	}
}

// TestAdmitterIdleReset: the idle reset erases a departed task's
// contribution at the idling stage, unlocking an admission that the
// deadline-decremented ledger alone would refuse.
func TestAdmitterIdleReset(t *testing.T) {
	a := NewAdmitter(2, ModeOPA, RegionExact{}, nil)
	if !a.TryAdmit(task.Chain(1, 0, 1, 0.5, 0.01)) {
		t.Fatal("task 1 should be admitted")
	}
	probe := func() bool {
		cp := *task.Chain(2, 0.2, 1, 0.5, 0.01)
		admitted := a.TryAdmit(&cp)
		if admitted {
			t.Fatal("probe unexpectedly admitted; the test needs a saturating first task")
		}
		return admitted
	}
	probe()
	// Task 1 finishes stage 0 and the stage idles: its 0.5 contribution
	// there is erased, making room for task 3's stage-0 demand.
	a.MarkDeparted(0, 1)
	a.HandleStageIdle(0)
	if !a.TryAdmit(task.Chain(3, 0.3, 1, 0.5, 0.01)) {
		t.Fatal("idle reset should have freed stage 0")
	}
	invariant(t, a)
}

// TestAdmitterSetsStrictFrozenPriorities: OPA writes strict priorities
// into admitted tasks and never reuses a level among concurrent tasks.
func TestAdmitterSetsStrictFrozenPriorities(t *testing.T) {
	a := NewAdmitter(1, ModeOPA, RegionExact{}, nil)
	tasks := []*task.Task{
		task.Chain(1, 0, 1.0, 0.15),
		task.Chain(2, 0, 1.0, 0.15), // tied deadline: strict level anyway
		task.Chain(3, 0, 0.5, 0.05),
	}
	seen := map[float64]bool{}
	for _, tk := range tasks {
		if !a.TryAdmit(tk) {
			t.Fatalf("task %d rejected", tk.ID)
		}
		if seen[tk.Priority] {
			t.Fatalf("priority %v assigned twice", tk.Priority)
		}
		seen[tk.Priority] = true
	}
	// Task 3 (D = 0.5) slots ABOVE the tied pair: deadline-slot
	// placement keeps the frozen order DM-compatible, so α stays 1.
	if st := a.Snapshot(); st.Alpha != 1 {
		t.Fatalf("deadline-slot placement should keep α = 1, got %v", st.Alpha)
	}
}

// TestAdmitterPerTaskBeatsGlobalPointwise: on a seeded stream, the
// per-task OPA admitter admits strictly more than the paper's global
// Eq. 15 test (α = 1, same deadline-decremented ledger) — the
// region-widening claim at the decision level. The stream is
// deliberately MIXED-SPAN: for full-span chains the per-task system
// collapses to the global inequality (THEORY.md §9), so the strict gap
// must come from partial-span flows with heterogeneous deadlines —
// here a short-deadline class touching only stage 0 and a long-deadline
// class touching stages 1..2, so neither class's per-stage Dmax is
// inflated by the other. The streams share one arrival sequence; each
// controller evolves its own state.
func TestAdmitterPerTaskBeatsGlobalPointwise(t *testing.T) {
	const stages = 3
	type cur struct {
		absDl float64
		contr [stages]float64
	}
	var globalCur []cur
	region := core.NewRegion(stages)

	globalAdmit := func(tk *task.Task) bool {
		w := 0
		for _, c := range globalCur {
			if c.absDl > tk.Arrival {
				globalCur[w] = c
				w++
			}
		}
		globalCur = globalCur[:w]
		var utils [stages]float64
		for _, c := range globalCur {
			for j := 0; j < stages; j++ {
				utils[j] += c.contr[j]
			}
		}
		var nc cur
		nc.absDl = tk.AbsoluteDeadline()
		for j := 0; j < stages; j++ {
			nc.contr[j] = tk.Contribution(j)
			utils[j] += nc.contr[j]
		}
		if !region.Contains(utils[:]) {
			return false
		}
		globalCur = append(globalCur, nc)
		return true
	}

	a := NewAdmitter(stages, ModeOPA, RegionExact{}, nil)
	g := dist.NewRNG(314)
	now := 0.0
	admG, admO := 0, 0
	for i := 0; i < 1500; i++ {
		now += g.ExpFloat64() * 0.5
		demands := make([]float64, stages)
		var dl float64
		if g.Float64() < 0.5 {
			// Interactive class: stage 0 only, tight deadline.
			demands[0] = 0.25 * g.ExpFloat64()
			dl = 0.8 + 0.4*g.Float64()
		} else {
			// Batch class: stages 1..2, loose deadline.
			demands[1] = 0.8 * g.ExpFloat64()
			demands[2] = 0.8 * g.ExpFloat64()
			dl = 8 * (0.75 + 0.5*g.Float64())
		}
		tk := task.Chain(task.ID(i+1), now, dl, demands...)
		cp := *tk
		gAdm := globalAdmit(tk)
		oAdm := a.TryAdmit(&cp)
		if gAdm {
			admG++
		}
		if oAdm {
			admO++
		}
	}
	if admO < admG {
		t.Fatalf("per-task OPA admitted %d, global Eq. 15 admitted %d: the refinement regressed", admO, admG)
	}
	if admO == admG {
		t.Fatalf("per-task OPA admitted exactly the global count (%d) on a heavy-spread stream; expected strict widening", admO)
	}
}
