// Package priority implements Audsley-style optimal priority assignment
// (OPA) for multi-stage resource pipelines.
//
// The feasible region (Eq. 15) pays an α penalty for any fixed-priority
// policy other than deadline-monotonic: α = min D_lo/D_hi over pairs in
// which the shorter-deadline task has lower priority. Deadline-monotonic
// earns α = 1, but DM-as-a-policy assigns EQUAL priority to equal
// deadlines, and equal-priority tasks interfere with each other in both
// directions — a real admission cost on workloads whose deadlines are
// quantized (shared SLA classes, cohort deadlines). The OPA search of
// this package assigns strict priority levels lowest-first: at each
// level it tries every unassigned task against a pluggable per-task
// schedulability test and keeps any task that remains schedulable with
// all other unassigned tasks above it. For the monotone tests used here
// the search is optimal for the tested class (THEORY.md §9): if any
// total order passes the test, the search finds one, and the
// deterministic largest-deadline-first tie-break recovers a
// DM-compatible order (α = 1) whenever one is feasible.
//
// Three tests can drive the search:
//
//   - RegionExact — the Theorem 1 delay composition restricted to each
//     task's equal-or-higher-priority interference set, with a per-stage
//     maximum deadline: Σ_j f(U_j)·Dmax_j ≤ D_i·(1 − Σβ_j). The
//     tightest sound test; the admission-time default.
//   - AlphaPenalized — the same composition with one global maximum
//     deadline, i.e. the scalar α form of Eq. 15 applied per task.
//     Coarser than RegionExact; it is the test the closed-form region
//     implies.
//   - ResponseTime — an additive per-stage interference bound
//     Σ_j (C_ij + Σ_hp C_kj) ≤ D_i·(1 − Σβ_j). It genuinely
//     differentiates priority orders beyond deadlines, but it is NOT
//     sound under aperiodic churn (a long-lived task can absorb
//     interference from successive short tasks that are never
//     simultaneously current), so it drives offline comparison and the
//     tightness study, never the zero-miss admission path.
//
// The Admitter applies the search online: admitted tasks keep their
// priorities frozen (the fixed-priority premise of Theorem 1) and each
// arrival is placed at its deadline slot with a strict level — for the
// monotone deadline-scaled tests the exchange lemma (THEORY.md §9)
// shows any feasible slot can be bubbled to the deadline slot, so one
// placement check decides admission and the frozen order stays
// DM-compatible by induction. pipeline.Options.PriorityPolicy selects
// it; online.Controller.Reprioritize republishes the α a new order
// earns without dropping admitted work.
package priority
