package priority

import (
	"fmt"

	"feasregion/internal/core"
	"feasregion/internal/dist"
	"feasregion/internal/task"
)

// Mode selects how the Admitter places an arrival in the priority order.
type Mode int

const (
	// ModeOPA gives each arrival a strict priority level at its
	// deadline slot — for the monotone deadline-scaled tests, the slot
	// the Audsley search provably settles on (exchange lemma, THEORY.md
	// §9) — and admits iff the test passes for it and for every current
	// task below it.
	ModeOPA Mode = iota
	// ModeDM places arrivals by relative deadline, equal deadlines at
	// equal priority (mutually interfering) — deadline-monotonic as a
	// policy, driven by the same test.
	ModeDM
	// ModeRandom draws a uniform priority per arrival — the α-worst-case
	// comparison order.
	ModeRandom
)

// String names the mode for experiment tables.
func (m Mode) String() string {
	switch m {
	case ModeOPA:
		return "opa"
	case ModeDM:
		return "dm"
	case ModeRandom:
		return "random"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Admitter is a priority-aware admission controller implementing
// pipeline.Admitter: it keeps the set of current tasks (arrival to
// absolute deadline, lazily expired against each arrival's clock), and
// admits a task iff a priority slot exists where the per-task
// schedulability test passes for the newcomer AND for every current
// task that ends up below it. Admitted tasks' priorities are frozen —
// the fixed-priority premise Theorem 1 needs — and the chosen priority
// is written to the task before the pipeline starts it, so every stage
// schedules by it.
//
// The ledger follows the paper's semantics: contributions are
// deadline-decremented (lazily, against arrival clocks) and the idle
// reset erases a departed task's contribution at a stage when that
// stage idles — so all modes run the same current-set accounting as the
// global controller and their admitted ratios are directly comparable.
// The steady-state admit path performs no allocations (scratch slices
// are retained between calls).
type Admitter struct {
	stages int
	test   Test
	mode   Mode
	rng    *dist.RNG

	// cur is the current-task set in ascending priority value (most
	// urgent first); backing holds the demand vectors, stride = stages.
	cur     []entry
	backing []float64

	// cands mirrors cur as test candidates (Demands subslice backing);
	// withNew is the interference-set scratch for below-task rechecks.
	cands   []Candidate
	withNew []Candidate

	admitted uint64
	rejected uint64
	expired  uint64
}

type entry struct {
	id       task.ID
	deadline float64
	absDl    float64
	prio     float64
	// departed is the number of leading stages the task has finished
	// service at (stages depart in pipeline order), for the idle reset.
	departed int
}

// NewAdmitter builds an Admitter for an N-stage pipeline. test nil
// selects RegionExact (the sound admission default); rng seeds
// ModeRandom draws (nil: a fixed internal seed).
func NewAdmitter(stages int, mode Mode, test Test, rng *dist.RNG) *Admitter {
	if stages <= 0 {
		panic(fmt.Sprintf("priority: admitter needs at least one stage, got %d", stages))
	}
	if test == nil {
		test = RegionExact{}
	}
	if rng == nil {
		rng = dist.NewRNG(0x0a11d5)
	}
	return &Admitter{stages: stages, test: test, mode: mode, rng: rng}
}

// Stats is the Admitter's decision and population snapshot.
type Stats struct {
	Admitted uint64  // tasks admitted
	Rejected uint64  // tasks refused a slot
	Expired  uint64  // tasks lazily purged at their absolute deadline
	Current  int     // current-task population
	Alpha    float64 // urgency-inversion parameter of the current order
}

// Snapshot returns the Admitter's counters and the α its current
// priority order earns (core.Alpha over the live set; 1 when empty or
// DM-compatible).
func (a *Admitter) Snapshot() Stats {
	params := make([]core.TaskParams, len(a.cur))
	for i, e := range a.cur {
		params[i] = core.TaskParams{Priority: e.prio, Deadline: e.deadline}
	}
	return Stats{
		Admitted: a.admitted,
		Rejected: a.rejected,
		Expired:  a.expired,
		Current:  len(a.cur),
		Alpha:    core.Alpha(params),
	}
}

// MarkDeparted implements pipeline.Admitter: it records that the task
// finished service at the stage, arming the idle reset.
func (a *Admitter) MarkDeparted(stage int, id task.ID) {
	for i := range a.cur {
		if a.cur[i].id == id {
			if stage+1 > a.cur[i].departed {
				a.cur[i].departed = stage + 1
			}
			return
		}
	}
}

// HandleStageIdle implements pipeline.Admitter: the paper's idle reset,
// applied to the per-task ledger — when stage j idles, the
// contributions of tasks that already departed it are erased there (a
// departed task can no longer occupy the stage, and an idle stage has
// no backlog carrying its history), so subsequent per-task tests see
// the reduced interference.
func (a *Admitter) HandleStageIdle(stage int) {
	if stage < 0 || stage >= a.stages {
		return
	}
	for i := range a.cur {
		if a.cur[i].departed > stage {
			a.backing[i*a.stages+stage] = 0
		}
	}
}

// TryAdmit implements pipeline.Admitter: it expires tasks whose
// absolute deadline has passed (the arrival's own clock), searches for
// a feasible priority slot per the Admitter's mode, and on success
// freezes the chosen priority into t.Priority and the current set.
func (a *Admitter) TryAdmit(t *task.Task) bool {
	a.purge(t.Arrival)
	c := a.candidate(t)

	var prio float64
	var pos int
	var ok bool
	switch a.mode {
	case ModeDM:
		prio = t.Deadline
		pos, ok = a.placeAt(c, prio)
	case ModeRandom:
		prio = a.rng.Float64()
		pos, ok = a.placeAt(c, prio)
	default:
		prio, pos, ok = a.placeOPA(c)
	}
	if !ok {
		a.rejected++
		return false
	}

	t.Priority = prio
	a.insert(pos, entry{id: t.ID, deadline: t.Deadline, absDl: t.AbsoluteDeadline(), prio: prio}, t)
	a.admitted++
	return true
}

// candidate stages t's demand vector past the end of the backing array
// (no commitment yet) and returns it as a test candidate.
func (a *Admitter) candidate(t *task.Task) Candidate {
	n := len(a.cur) * a.stages
	a.backing = a.backing[:n]
	for j := 0; j < a.stages; j++ {
		a.backing = append(a.backing, t.StageDemand(j))
	}
	return Candidate{ID: t.ID, Deadline: t.Deadline, Demands: a.backing[n : n+a.stages]}
}

// purge drops tasks no longer current at time now and refreshes the
// candidate mirror.
func (a *Admitter) purge(now float64) {
	w := 0
	for i := range a.cur {
		if a.cur[i].absDl > now {
			if w != i {
				a.cur[w] = a.cur[i]
				copy(a.backing[w*a.stages:(w+1)*a.stages], a.backing[i*a.stages:(i+1)*a.stages])
			}
			w++
		} else {
			a.expired++
		}
	}
	a.cur = a.cur[:w]
	a.backing = a.backing[:w*a.stages]

	a.cands = a.cands[:0]
	for i := range a.cur {
		a.cands = append(a.cands, Candidate{
			ID:       a.cur[i].id,
			Deadline: a.cur[i].deadline,
			Demands:  a.backing[i*a.stages : (i+1)*a.stages],
		})
	}
}

// belowOK rechecks current task k with the newcomer joining its
// equal-or-higher interference set (everything up to and including its
// own priority group, minus itself).
func (a *Admitter) belowOK(k int, c Candidate) bool {
	g := k
	for g+1 < len(a.cur) && a.cur[g+1].prio == a.cur[k].prio {
		g++
	}
	a.withNew = a.withNew[:0]
	a.withNew = append(a.withNew, a.cands[:k]...)
	a.withNew = append(a.withNew, a.cands[k+1:g+1]...)
	a.withNew = append(a.withNew, c)
	return a.test.Feasible(a.cands[k], a.withNew, a.stages)
}

// placeAt checks the newcomer at a fixed priority value (DM/random
// modes): its interference set is every current task at equal-or-higher
// priority, and every current task at equal-or-lower priority must
// still pass with the newcomer added. Returns the insertion index.
func (a *Admitter) placeAt(c Candidate, prio float64) (int, bool) {
	n := len(a.cur)
	// ub: first index with strictly lower priority (larger value);
	// lb: first index with equal priority.
	lb, ub := n, n
	for i, e := range a.cur {
		if e.prio >= prio {
			lb = i
			break
		}
	}
	for i := lb; i < n; i++ {
		if a.cur[i].prio > prio {
			ub = i
			break
		}
	}
	// Newcomer's equal-or-higher set includes its own priority group.
	a.withNew = a.withNew[:0]
	a.withNew = append(a.withNew, a.cands[:ub]...)
	if !a.test.Feasible(c, a.withNew, a.stages) {
		return 0, false
	}
	for k := lb; k < n; k++ {
		if !a.belowOK(k, c) {
			return 0, false
		}
	}
	return ub, true
}

// placeOPA places the newcomer at its deadline slot with a strict
// level: below every current task with an equal-or-shorter deadline,
// above every strictly longer one. For the monotone deadline-scaled
// tests this slot is optimal, not merely heuristic — the exchange lemma
// (THEORY.md §9) shows any feasible slot can be bubbled to the deadline
// slot without breaking a passing task, so if the deadline slot fails
// (the newcomer's own test, or any task below it with the newcomer
// added), every slot fails and the scan is unnecessary. Keeping every
// placement at its deadline slot also keeps the frozen order
// DM-compatible by induction, which is what makes the lemma applicable
// at the NEXT arrival (and keeps the recomputed α at 1). Returns the
// strict priority value and insertion index.
func (a *Admitter) placeOPA(c Candidate) (float64, int, bool) {
	n := len(a.cur)
	pos := n
	for i := range a.cur {
		if a.cur[i].deadline > c.Deadline {
			pos = i
			break
		}
	}
	if !a.test.Feasible(c, a.cands[:pos], a.stages) {
		return 0, 0, false
	}
	for k := pos; k < n; k++ {
		if !a.belowOK(k, c) {
			return 0, 0, false
		}
	}
	prio, ok := a.slotPriority(pos)
	if !ok {
		return 0, 0, false // float precision exhausted between neighbors
	}
	return prio, pos, true
}

// slotPriority returns a strict priority value for insertion at pos.
func (a *Admitter) slotPriority(pos int) (float64, bool) {
	n := len(a.cur)
	switch {
	case n == 0:
		return 0, true
	case pos == n:
		return a.cur[n-1].prio + 1, true
	case pos == 0:
		return a.cur[0].prio - 1, true
	default:
		lo, hi := a.cur[pos-1].prio, a.cur[pos].prio
		mid := lo + (hi-lo)/2
		if !(mid > lo && mid < hi) {
			return 0, false
		}
		return mid, true
	}
}

// insert commits the newcomer at index pos. Its staged demand vector is
// already past the end of the backing array; shift it into place.
func (a *Admitter) insert(pos int, e entry, t *task.Task) {
	s := a.stages
	a.cur = append(a.cur, entry{})
	copy(a.cur[pos+1:], a.cur[pos:])
	a.cur[pos] = e

	// backing currently holds len(cur)-1 committed vectors plus the
	// staged one at the end; rotate the staged vector into slot pos.
	staged := a.backing[len(a.backing)-s:]
	tmp := [8]float64{}
	var hold []float64
	if s <= len(tmp) {
		hold = tmp[:s]
	} else {
		hold = make([]float64, s)
	}
	copy(hold, staged)
	copy(a.backing[(pos+1)*s:], a.backing[pos*s:len(a.backing)-s])
	copy(a.backing[pos*s:(pos+1)*s], hold)
}
