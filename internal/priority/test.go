package priority

import (
	"feasregion/internal/core"
	"feasregion/internal/task"
)

// Candidate is one task as the priority search sees it: an identity, a
// relative end-to-end deadline, and per-stage computation demands. The
// search never mutates candidates.
type Candidate struct {
	ID       task.ID
	Deadline float64
	Demands  []float64
}

// FromTask extracts a chain task's search candidate, padding or
// truncating the demand vector to the given stage count.
func FromTask(t *task.Task, stages int) Candidate {
	d := make([]float64, stages)
	for j := range d {
		d[j] = t.StageDemand(j)
	}
	return Candidate{ID: t.ID, Deadline: t.Deadline, Demands: d}
}

// Candidates converts a task slice for Assign.
func Candidates(tasks []*task.Task, stages int) []Candidate {
	cs := make([]Candidate, len(tasks))
	for i, t := range tasks {
		cs[i] = FromTask(t, stages)
	}
	return cs
}

// demand returns the candidate's demand at stage j (0 beyond its vector).
func (c Candidate) demand(j int) float64 {
	if j < 0 || j >= len(c.Demands) {
		return 0
	}
	return c.Demands[j]
}

// Test is a per-task schedulability test the OPA search (and the online
// Admitter) can be driven by. Audsley's argument requires exactly the
// two properties the interface documents: the verdict for c depends only
// on the SET higher (not its internal order), and it is monotone —
// removing tasks from higher never flips a passing verdict to failing.
// All tests in this package satisfy both.
type Test interface {
	// Name identifies the test in experiment logs.
	Name() string
	// Feasible reports whether task c meets its end-to-end deadline
	// when exactly the tasks in higher hold equal-or-higher priority
	// and are concurrently current with it. stages is the pipeline
	// length N.
	Feasible(c Candidate, higher []Candidate, stages int) bool
}

// betaSum folds per-stage normalized blocking into the deadline budget
// D_i·(1 − Σβ_j); nil betas mean independent tasks.
func betaSum(betas []float64) float64 {
	s := 0.0
	for _, b := range betas {
		s += b
	}
	return s
}

// RegionExact is the Theorem 1 delay composition restricted to the
// task's interference set, with a per-stage maximum deadline: task i is
// schedulable below the set H when
//
//	Σ_j f(U_j(H∪{i})) · Dmax_j(H∪{i})  ≤  D_i · (1 − Σ_j β_j)
//
// where U_j sums C_kj/D_k over the set and Dmax_j is the largest
// deadline among set members with positive demand on stage j (tasks
// absent from a stage cannot delay anyone there). This is the tightest
// of the package's sound tests and the admission-time default: every
// admitted task's delay bound follows from Theorem 1 applied to the
// fixed-priority subsystem of its equal-or-higher-priority tasks, so
// zero deadline misses among admitted tasks are guaranteed.
type RegionExact struct {
	// Betas is the per-stage normalized blocking (nil: independent).
	Betas []float64
}

// Name implements Test.
func (RegionExact) Name() string { return "region-exact" }

// Feasible implements Test.
func (rt RegionExact) Feasible(c Candidate, higher []Candidate, stages int) bool {
	if c.Deadline <= 0 {
		return false
	}
	budget := c.Deadline * (1 - betaSum(rt.Betas))
	if budget < 0 {
		return false
	}
	total := 0.0
	for j := 0; j < stages; j++ {
		u, dmax := 0.0, 0.0
		if d := c.demand(j); d > 0 {
			u += d / c.Deadline
			dmax = c.Deadline
		}
		for _, h := range higher {
			if d := h.demand(j); d > 0 {
				u += d / h.Deadline
				if h.Deadline > dmax {
					dmax = h.Deadline
				}
			}
		}
		if u >= 1 {
			return false
		}
		total += core.StageDelayFactor(u) * dmax
		if total > budget {
			return false
		}
	}
	return total <= budget
}

// AlphaPenalized is the scalar α form of the region bound applied per
// task: one global maximum deadline scales every stage's delay term,
//
//	Σ_j f(U_j(H∪{i})) · Dmax(H∪{i})  ≤  D_i · (1 − Σ_j β_j)
//
// i.e. Σ_j f(U_j) ≤ α·(1 − Σβ_j) with α = D_i/Dmax — exactly the
// penalty Eq. 15 charges a non-DM order. Sound but coarser than
// RegionExact (Dmax is not per-stage); kept as a search driver so the
// experiment can quantify what the per-stage refinement buys.
type AlphaPenalized struct {
	// Betas is the per-stage normalized blocking (nil: independent).
	Betas []float64
}

// Name implements Test.
func (AlphaPenalized) Name() string { return "alpha-penalized" }

// Feasible implements Test.
func (at AlphaPenalized) Feasible(c Candidate, higher []Candidate, stages int) bool {
	if c.Deadline <= 0 {
		return false
	}
	budget := c.Deadline * (1 - betaSum(at.Betas))
	if budget < 0 {
		return false
	}
	dmax := c.Deadline
	for _, h := range higher {
		if h.Deadline > dmax {
			dmax = h.Deadline
		}
	}
	total := 0.0
	for j := 0; j < stages; j++ {
		u := 0.0
		if d := c.demand(j); d > 0 {
			u += d / c.Deadline
		}
		for _, h := range higher {
			if d := h.demand(j); d > 0 {
				u += d / h.Deadline
			}
		}
		if u >= 1 {
			return false
		}
		total += core.StageDelayFactor(u) * dmax
		if total > budget {
			return false
		}
	}
	return total <= budget
}

// ResponseTime is an additive response-time-style check: the task's
// end-to-end response is bounded by its own demand plus one full demand
// of every equal-or-higher-priority task at every stage,
//
//	Σ_{j: C_ij>0} ( C_ij + Σ_{k∈H} C_kj )  ≤  D_i · (1 − Σ_j β_j)
//
// (stages the task does not occupy are skipped — its passage there is
// instantaneous).
//
// Unlike the region tests it is additive in demands rather than convex
// in utilization, so it genuinely ranks priority orders beyond their
// deadlines — the test under which OPA strictly beats DM on untied
// workloads. It is, however, NOT sound as an aperiodic admission test:
// it charges each interfering task once, but over a long task's
// lifetime many short tasks can be current in succession, each
// interfering in its turn (THEORY.md §9 gives the counterexample). Use
// it for offline assignment comparison and the tightness study only.
type ResponseTime struct {
	// Betas is the per-stage normalized blocking (nil: independent).
	Betas []float64
}

// Name implements Test.
func (ResponseTime) Name() string { return "response-time" }

// Feasible implements Test.
func (rt ResponseTime) Feasible(c Candidate, higher []Candidate, stages int) bool {
	if c.Deadline <= 0 {
		return false
	}
	budget := c.Deadline * (1 - betaSum(rt.Betas))
	if budget < 0 {
		return false
	}
	total := 0.0
	for j := 0; j < stages; j++ {
		own := c.demand(j)
		if own == 0 {
			continue
		}
		total += own
		for _, h := range higher {
			total += h.demand(j)
		}
		if total > budget {
			return false
		}
	}
	return total <= budget
}
