package priority

import (
	"fmt"
	"sort"

	"feasregion/internal/core"
	"feasregion/internal/dist"
	"feasregion/internal/task"
)

// Assignment is the result of an OPA search: a total priority order over
// the candidate set, highest priority first. Order[k] holds priority
// value k (lower = more urgent), so the levels are strict — no two tasks
// share a priority, which is what removes the mutual interference DM
// suffers between equal deadlines.
type Assignment struct {
	// Order lists the candidates highest-priority first.
	Order []Candidate

	levels map[task.ID]int
	test   string
}

// TestName returns the name of the schedulability test that drove the
// search.
func (a *Assignment) TestName() string { return a.test }

// PriorityOf returns the assigned priority value for the task (its level
// index, lower = more urgent) and whether the task was part of the
// search.
func (a *Assignment) PriorityOf(id task.ID) (float64, bool) {
	lv, ok := a.levels[id]
	return float64(lv), ok
}

// Params exports the assignment as the (priority, deadline) pairs the
// urgency-inversion analysis consumes.
func (a *Assignment) Params() []core.TaskParams {
	params := make([]core.TaskParams, len(a.Order))
	for k, c := range a.Order {
		params[k] = core.TaskParams{Priority: float64(k), Deadline: c.Deadline}
	}
	return params
}

// Alpha returns the urgency-inversion parameter the assignment earns
// under Eq. 15: 1 when the order is DM-compatible, the worst inverted
// deadline ratio otherwise.
func (a *Assignment) Alpha() float64 { return core.Alpha(a.Params()) }

// DMCompatible reports whether the order never places a longer deadline
// above a shorter one — the condition under which the recomputed α is
// exactly 1 and the assignment costs the region nothing.
func (a *Assignment) DMCompatible() bool { return core.DMCompatible(a.Params()) }

// Policy wraps the assignment as a task.Policy for pipeline use: tasks
// in the assignment get their searched level, others fall back (nil
// fallback: deadline-monotonic).
func (a *Assignment) Policy(fallback task.Policy) task.Policy {
	ids := make([]task.ID, len(a.Order))
	prios := make([]float64, len(a.Order))
	for k, c := range a.Order {
		ids[k] = c.ID
		prios[k] = float64(k)
	}
	return NewExplicitOrder(ids, prios, fallback)
}

// InfeasibleError reports an OPA search that ran out of assignable
// tasks: at the listed level no unassigned task passed the test with
// the others above it. For the monotone tests of this package that
// means NO total order passes — the set is unschedulable for the tested
// class, not merely for the orders tried.
type InfeasibleError struct {
	// Level is the priority level (counting 0 = highest) that could not
	// be filled.
	Level int
	// Unassigned lists the tasks still without a priority, in the
	// deterministic order the level tried them.
	Unassigned []task.ID
}

// Error implements error.
func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("priority: no task schedulable at level %d; unassigned: %v", e.Level, e.Unassigned)
}

// Assign runs the Audsley-style OPA search over the candidate set for an
// N-stage pipeline: levels are filled lowest-first, and at each level
// every still-unassigned task is tried — largest deadline first, ties by
// larger ID, so runs are reproducible and a DM-compatible order is
// recovered whenever one passes the test — against the test with all
// other unassigned tasks as its equal-or-higher interference set. The
// first task that passes takes the level.
//
// For a monotone set-based test this is optimal: if any total order
// makes every task pass, Assign finds such an order (THEORY.md §9). On
// failure it returns an InfeasibleError naming the level and the tasks
// left over; the partial assignment is not exposed because no sound
// admission decision can be built on it.
//
// The search is O(n²) test invocations; with the package's O(n·N)
// tests, O(n³·N) total — an offline/bench cost. Admission-time use goes
// through Admitter, which maintains an order incrementally.
func Assign(cands []Candidate, stages int, test Test) (*Assignment, error) {
	if test == nil {
		test = RegionExact{}
	}
	// Deterministic candidate order: largest deadline first so the
	// lowest level tries the DM victim first; ID breaks exact ties.
	un := append([]Candidate(nil), cands...)
	sort.Slice(un, func(i, j int) bool {
		if un[i].Deadline != un[j].Deadline {
			return un[i].Deadline > un[j].Deadline
		}
		return un[i].ID > un[j].ID
	})

	order := make([]Candidate, len(un))
	scratch := make([]Candidate, 0, len(un))
	for level := len(un) - 1; level >= 0; level-- {
		placed := -1
		for i, c := range un {
			// Everyone else still unassigned sits above c at this level.
			scratch = scratch[:0]
			scratch = append(scratch, un[:i]...)
			scratch = append(scratch, un[i+1:]...)
			if test.Feasible(c, scratch, stages) {
				placed = i
				break
			}
		}
		if placed < 0 {
			ids := make([]task.ID, len(un))
			for i, c := range un {
				ids[i] = c.ID
			}
			return nil, &InfeasibleError{Level: level, Unassigned: ids}
		}
		order[level] = un[placed]
		un = append(un[:placed], un[placed+1:]...)
	}

	levels := make(map[task.ID]int, len(order))
	for k, c := range order {
		levels[c.ID] = k
	}
	return &Assignment{Order: order, levels: levels, test: test.Name()}, nil
}

// AssignTasks is Assign over *task.Task values, returning the
// assignment with every task's Priority field set to its searched
// level. Tasks are not mutated on failure.
func AssignTasks(tasks []*task.Task, stages int, test Test) (*Assignment, error) {
	a, err := Assign(Candidates(tasks, stages), stages, test)
	if err != nil {
		return nil, err
	}
	for _, t := range tasks {
		if p, ok := a.PriorityOf(t.ID); ok {
			t.Priority = p
		}
	}
	return a, nil
}

// ExplicitOrder is a task.Policy that replays a precomputed priority
// order (typically an OPA Assignment): listed tasks get their recorded
// priority value, unlisted tasks fall back to the fallback policy
// (deadline-monotonic when nil). It is fixed-priority in the paper's
// sense, so the feasible region applies with the α the order earns
// (core.Alpha over its params).
type ExplicitOrder struct {
	prios    map[task.ID]float64
	fallback task.Policy
}

// NewExplicitOrder builds the policy from parallel id/priority slices
// (panics if their lengths differ).
func NewExplicitOrder(ids []task.ID, prios []float64, fallback task.Policy) *ExplicitOrder {
	if len(ids) != len(prios) {
		panic(fmt.Sprintf("priority: %d ids for %d priorities", len(ids), len(prios)))
	}
	if fallback == nil {
		fallback = task.DeadlineMonotonic{}
	}
	m := make(map[task.ID]float64, len(ids))
	for i, id := range ids {
		m[id] = prios[i]
	}
	return &ExplicitOrder{prios: m, fallback: fallback}
}

// Name implements task.Policy.
func (o *ExplicitOrder) Name() string { return "explicit-order" }

// Assign implements task.Policy.
func (o *ExplicitOrder) Assign(t *task.Task, g *dist.RNG) float64 {
	if p, ok := o.prios[t.ID]; ok {
		return p
	}
	return o.fallback.Assign(t, g)
}

// Fixed implements task.Policy.
func (o *ExplicitOrder) Fixed() bool { return true }
