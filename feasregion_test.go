package feasregion_test

import (
	"math"
	"testing"
	"time"

	feasregion "feasregion"
)

func TestPublicAPIQuickstart(t *testing.T) {
	sim := feasregion.NewSimulator()
	p := feasregion.NewPipeline(sim, feasregion.PipelineOptions{Stages: 3})
	sim.At(0, func() { p.BeginMeasurement() })

	admitted, rejected := 0, 0
	sim.At(0, func() {
		for i := 0; i < 100; i++ {
			tk := feasregion.Chain(feasregion.TaskID(i), 0, 1.0, 0.02, 0.03, 0.02)
			if p.Offer(tk) {
				admitted++
			} else {
				rejected++
			}
		}
	})
	sim.Run()
	if admitted == 0 {
		t.Fatal("nothing admitted")
	}
	m := p.Snapshot()
	if m.Missed != 0 {
		t.Fatalf("%d admitted tasks missed deadlines", m.Missed)
	}
	if m.Completed != uint64(admitted) {
		t.Fatalf("completed %d, admitted %d", m.Completed, admitted)
	}
}

func TestPublicRegionMath(t *testing.T) {
	if math.Abs(feasregion.UniprocessorBound-(2-math.Sqrt2)) > 1e-12 {
		t.Fatal("uniprocessor bound")
	}
	r := feasregion.NewRegion(3)
	if v := r.Value([]float64{0.4, 0.25, 0.1}); math.Abs(v-0.93) > 0.005 {
		t.Fatalf("TSCE example value %v, want ≈0.93", v)
	}
	if got := feasregion.InverseStageDelayFactor(feasregion.StageDelayFactor(0.3)); math.Abs(got-0.3) > 1e-9 {
		t.Fatal("inverse roundtrip")
	}
}

func TestPublicAlphaAndBetas(t *testing.T) {
	a := feasregion.Alpha([]feasregion.TaskParams{
		{Priority: 0, Deadline: 10},
		{Priority: 1, Deadline: 2},
	})
	if math.Abs(a-0.2) > 1e-12 {
		t.Fatalf("alpha %v, want 0.2", a)
	}
	betas := feasregion.Betas(1, []feasregion.BlockingTaskInfo{
		{Priority: 1, Deadline: 10, Sections: []feasregion.CriticalSection{{Stage: 0, Lock: 1, Duration: 0.5}}},
		{Priority: 5, Deadline: 50, Sections: []feasregion.CriticalSection{{Stage: 0, Lock: 1, Duration: 2}}},
	})
	if math.Abs(betas[0]-0.2) > 1e-12 {
		t.Fatalf("betas %v", betas)
	}
}

func TestPublicGraphAPI(t *testing.T) {
	g := feasregion.NewGraph()
	n1 := g.AddNode(0, feasregion.Subtask{Demand: 1})
	n2 := g.AddNode(1, feasregion.Subtask{Demand: 1})
	g.AddEdge(n1, n2)
	if !feasregion.GraphFeasible(g, []float64{0.2, 0.2}, nil, 1) {
		t.Fatal("light DAG point must be feasible")
	}
	sim := feasregion.NewSimulator()
	gs := feasregion.NewGraphSystem(sim, feasregion.GraphSystemOptions{Resources: 2})
	sim.At(0, func() { gs.BeginMeasurement() })
	ok := false
	sim.At(0, func() {
		ok = gs.Offer(&feasregion.Task{ID: 1, Deadline: 10, Graph: g})
	})
	sim.Run()
	if !ok {
		t.Fatal("DAG task rejected")
	}
	if m := gs.Snapshot(); m.Completed != 1 || m.Missed != 0 {
		t.Fatalf("metrics %+v", m)
	}
}

func TestPublicTSCE(t *testing.T) {
	scenario := feasregion.NewTSCE()
	res := scenario.ReservedUtilization()
	r := feasregion.NewRegion(3)
	if !r.Contains(res) {
		t.Fatal("TSCE reservation must be certified")
	}
}

func TestPublicWorkloadSource(t *testing.T) {
	sim := feasregion.NewSimulator()
	p := feasregion.NewPipeline(sim, feasregion.PipelineOptions{Stages: 2})
	spec := feasregion.WorkloadSpec{Stages: 2, Load: 1.0, MeanDemand: 1, Resolution: 50}
	src := feasregion.NewSource(sim, spec, 42, 300, func(tk *feasregion.Task) { p.Offer(tk) })
	sim.At(0, func() { p.BeginMeasurement() })
	src.Start()
	sim.Run()
	m := p.Snapshot()
	if m.Completed == 0 || m.Missed != 0 {
		t.Fatalf("metrics %+v", m)
	}
}

func TestPublicWaitQueue(t *testing.T) {
	sim := feasregion.NewSimulator()
	c := feasregion.NewController(sim, feasregion.NewRegion(1), nil)
	var admitted int
	w := feasregion.NewWaitQueue(sim, c, 0.5, func(*feasregion.Task) { admitted++ })
	w.Submit(feasregion.Chain(1, 0, 2, 0.5))
	if admitted != 1 {
		t.Fatal("immediate admission failed")
	}
}

func TestPublicFacadeConstructors(t *testing.T) {
	// Every facade constructor must hand back a working instance.
	est := feasregion.MeanDemand([]float64{1, 2})
	if got := est(nil, 1); got != 2 {
		t.Fatalf("MeanDemand estimator returned %v", got)
	}
	sim := feasregion.NewSimulator()
	gc := feasregion.NewGraphController(sim, 2, 1, nil)
	g := feasregion.NewGraph()
	g.AddNode(0, feasregion.Subtask{Demand: 1})
	if !gc.TryAdmit(&feasregion.Task{ID: 1, Deadline: 10, Graph: g}) {
		t.Fatal("graph controller rejected a light task")
	}
	oc := feasregion.NewOnlineController(feasregion.NewRegion(1), nil, nil)
	if !oc.TryAdmit(feasregion.OnlineRequest{ID: 1, Deadline: time.Second, Demands: []time.Duration{time.Millisecond}}) {
		t.Fatal("online controller rejected a light request")
	}
	cr := feasregion.NewCurveRecorder(1, nil)
	cr.Observe(0, 1, 0.5)
	if got := cr.Area(0, 0, 2); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("curve area %v", got)
	}
	tr := feasregion.NewTraceRecorder(4)
	tr.Add(feasregion.TraceRecord{Time: 1, Source: "s", Task: 1, Kind: "start"})
	if tr.Len() != 1 {
		t.Fatal("trace recorder")
	}
	rng := feasregion.NewRNG(1)
	if v := rng.Float64(); v < 0 || v >= 1 {
		t.Fatalf("rng sample %v", v)
	}
}
