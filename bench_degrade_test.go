package feasregion_test

import (
	"testing"
	"time"

	"feasregion/internal/online"
	"feasregion/internal/task"
)

// Quality-cascade benchmarks: the degraded admit path must cost no more
// allocations than the plain one (zero), and the fallback's extra
// region tests (the O(log QualityLevels) binary search) must stay in
// the same latency class as a full-quality admit. `make bench-degrade`
// emits these as BENCH_degrade.json — the "baseline vs degraded path"
// pair of the perf trajectory.

// degradeBenchOptional marks 90% of each benchmark demand optional.
func degradeBenchOptional(demands []time.Duration) []time.Duration {
	opt := make([]time.Duration, len(demands))
	for j, d := range demands {
		opt[j] = d * 9 / 10
	}
	return opt
}

// BenchmarkDegradeAdmitFull is the cascade's baseline shape: the region
// has room, so step (1) admits at full quality — the degraded machinery
// costs nothing when it is not needed.
func BenchmarkDegradeAdmitFull(b *testing.B) {
	c := online.New(benchRegion(), nil, nil)
	r := online.Request{
		ID:       1,
		Deadline: 10 * time.Millisecond,
		Demands:  benchDemands,
		Optional: degradeBenchOptional(benchDemands),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.ID = uint64(i + 1)
		lv, ok := c.TryAdmitQuality(r, task.QualityLevels)
		if !ok || lv != task.QualityLevels {
			b.Fatalf("admit (%d, %v), want full quality", lv, ok)
		}
		c.Release(r.ID)
	}
}

// BenchmarkDegradeAdmitFallback is the degraded path: a pre-filled
// region rejects the probe's full demand, the binary search lands on a
// middle quality level, and the admit commits there. Must stay
// 0 allocs/op.
func BenchmarkDegradeAdmitFallback(b *testing.B) {
	c := online.New(benchRegion(), nil, nil)
	// 0.25 utilization on each of the 3 stages: Σf ≈ 0.875 of bound 1,
	// leaving room for ~0.03 per stage.
	if !c.TryAdmit(online.Request{ID: 1 << 62, Deadline: time.Hour, Demands: []time.Duration{
		15 * time.Minute, 15 * time.Minute, 15 * time.Minute}}) {
		b.Fatal("could not pre-fill the region")
	}
	// Full demand 0.05/stage (rejected), mandatory 0.005 (fits): the
	// cascade settles between the two.
	demands := []time.Duration{500 * time.Microsecond, 500 * time.Microsecond, 500 * time.Microsecond}
	r := online.Request{
		ID:       1,
		Deadline: 10 * time.Millisecond,
		Demands:  demands,
		Optional: degradeBenchOptional(demands),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.ID = uint64(i + 1)
		lv, ok := c.TryAdmitQuality(r, task.QualityLevels)
		if !ok || lv == 0 || lv >= task.QualityLevels {
			b.Fatalf("admit (%d, %v), want a degraded middle level", lv, ok)
		}
		c.Release(r.ID)
	}
}

// BenchmarkDegradeAdmitRejectMandatory is the cascade's floor: even
// mandatory-only demand does not fit, so the optimistic mirror read
// rejects without taking the lock.
func BenchmarkDegradeAdmitRejectMandatory(b *testing.B) {
	c := online.New(benchRegion(), nil, nil)
	// The same 0.25/stage fill as the fallback bench: the probe's
	// mandatory part alone (0.05/stage) already overflows the bound.
	if !c.TryAdmit(online.Request{ID: 1 << 62, Deadline: time.Hour, Demands: []time.Duration{
		15 * time.Minute, 15 * time.Minute, 15 * time.Minute}}) {
		b.Fatal("could not pre-fill the region")
	}
	demands := []time.Duration{5 * time.Millisecond, 5 * time.Millisecond, 5 * time.Millisecond}
	r := online.Request{
		ID:       1,
		Deadline: 10 * time.Millisecond,
		Demands:  demands,
		Optional: degradeBenchOptional(demands),
	}
	if lv, ok := c.TryAdmitQuality(r, task.QualityLevels); ok {
		b.Fatalf("probe admitted at %d; region not full enough", lv)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.TryAdmitQuality(r, task.QualityLevels); ok {
			b.Fatal("full region admitted a request")
		}
	}
}

// BenchmarkDegradeSetQuality measures the governor's actuator: retuning
// an admitted request one level down and back up.
func BenchmarkDegradeSetQuality(b *testing.B) {
	c := online.New(benchRegion(), nil, nil)
	r := online.Request{
		ID:       1,
		Deadline: time.Hour,
		Demands:  []time.Duration{time.Minute, time.Minute, time.Minute},
		Optional: []time.Duration{54 * time.Second, 54 * time.Second, 54 * time.Second},
	}
	if lv, ok := c.TryAdmitQuality(r, task.QualityLevels); !ok || lv != task.QualityLevels {
		b.Fatalf("setup admit (%d, %v)", lv, ok)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.SetQuality(r, task.QualityLevels-1) {
			b.Fatal("lowering refused")
		}
		if !c.SetQuality(r, task.QualityLevels) {
			b.Fatal("restore refused")
		}
	}
}
