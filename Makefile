# feasregion — build / test / benchmark / experiment targets.

GO ?= go

.PHONY: all build vet test race test-race test-short bench bench-json bench-admit bench-degrade bench-cluster bench-des bench-priority profile-des docs-check experiments experiments-quick examples fuzz verify clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race: test-race

test-race:
	$(GO) test -race ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem .

# Metrics-overhead benchmarks (admit hot path, instruments off vs on)
# as machine-readable go-test JSON for regression tracking.
bench-json:
	$(GO) test -run '^$$' -bench 'Metrics(Off|On)' -benchmem -count 3 -json . > BENCH_metrics.json

# Admission hot-path scaling benchmarks (frozen pre-rewrite baseline
# vs current single-shard vs K=8 sharded; uncontended ns/op +
# allocs/op, 1/4/16/64/128/256-goroutine curves, lock-free reject
# path) as go-test JSON: the repo's perf trajectory. The sharded
# acceptance floor is ≥ 3× single-shard throughput at 64 goroutines
# with 0 allocs/op.
bench-admit:
	$(GO) test -run '^$$' -bench '^Benchmark(Baseline|Sharded)?Admit' -benchmem -count 3 -json . > BENCH_admit.json

# Quality-cascade benchmarks (full-quality admit vs degraded fallback
# vs mandatory-only lock-free reject, plus the SetQuality actuator) as
# go-test JSON; the degraded path must stay at 0 allocs/op.
bench-degrade:
	$(GO) test -run '^$$' -bench '^BenchmarkDegrade' -benchmem -count 3 -json . > BENCH_degrade.json

# Cluster routing hot-path benchmarks (Route + release for all three
# policies at 1/16/64 goroutines over an 8-replica fleet) as go-test
# JSON; the routing path must stay at 0 allocs/op.
bench-cluster:
	$(GO) test -run '^$$' -bench '^BenchmarkClusterRoute' -benchmem -count 3 -json . > BENCH_cluster.json

# Event-core benchmarks (frozen container/heap calendar vs the ladder
# queue: self-clocking timer streams, schedule/drain, cancel-heavy) as
# go-test JSON. The ladder rows must report 0 allocs/op; the rebuild's
# acceptance floor is ≥ 3× the heap's self-clocking event throughput.
bench-des:
	$(GO) test -run '^$$' -bench '^BenchmarkDes' -benchmem -count 3 -json . > BENCH_des.json

# Priority-assignment benchmarks (offline OPA search cost at 8/32/128
# tasks, online admitter steady-state TryAdmit) as go-test JSON; the
# admit path must stay at 0 allocs/op.
bench-priority:
	$(GO) test -run '^$$' -bench '^BenchmarkPriority' -benchmem -count 3 -json . > BENCH_priority.json

# CPU-profile the full-scale trace replay (10M+ records through region
# admission, twice); inspect with `go tool pprof cpu_replay.prof`.
profile-des:
	$(GO) run ./cmd/experiments -run replay -cpuprofile cpu_replay.prof -memprofile mem_replay.prof

# Documentation invariants: every package documented, every exported
# identifier of the public API documented, every relative markdown link
# resolving, and every `pkg.Ident` named in README/DESIGN/THEORY/
# EXPERIMENTS code spans existing in that package — plus go vet's
# doc-adjacent analyzers.
docs-check:
	$(GO) vet ./...
	$(GO) run ./cmd/docscheck

# Regenerates every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/experiments -csv results

experiments-quick:
	$(GO) run ./cmd/experiments -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/webserver
	$(GO) run ./examples/tsce
	$(GO) run ./examples/taskgraph
	$(GO) run ./examples/overload
	$(GO) run ./examples/httpserver
	$(GO) run ./examples/cluster

# Short fuzzing passes over the robustness-sensitive parsers and math.
fuzz:
	$(GO) test -fuzz FuzzParseReplay -fuzztime 30s ./internal/workload/
	$(GO) test -fuzz FuzzTraceReader -fuzztime 30s ./internal/workload/
	$(GO) test -fuzz FuzzStageDelayFactor -fuzztime 30s ./internal/core/
	$(GO) test -fuzz FuzzAlphaBounds -fuzztime 30s ./internal/core/
	$(GO) test -fuzz FuzzQualitySearch -fuzztime 30s ./internal/core/
	$(GO) test -fuzz FuzzQuantile -fuzztime 30s ./internal/stats/

clean:
	rm -rf results
	$(GO) clean -testcache

verify:
	$(GO) run ./cmd/experiments -run soundness
