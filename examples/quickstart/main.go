// Quickstart: the feasible region in five minutes.
//
// It shows the three ways to use the library:
//  1. closed-form region math (is this utilization point schedulable?),
//  2. online admission control against the region, and
//  3. a full discrete-event simulation that verifies no admitted task
//     misses its end-to-end deadline.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	feasregion "feasregion"
)

func main() {
	// --- 1. Region mathematics -------------------------------------
	// A 3-stage pipeline under deadline-monotonic scheduling: all
	// end-to-end deadlines are met while Σ f(U_j) ≤ 1.
	region := feasregion.NewRegion(3)
	point := []float64{0.40, 0.25, 0.10} // the paper's TSCE reservation
	fmt.Printf("region value at %v: %.4f (bound %.0f) -> inside=%v\n",
		point, region.Value(point), region.Bound(), region.Contains(point))
	fmt.Printf("single-stage bound: %.4f (= 1/(1+sqrt(1/2)))\n\n", feasregion.UniprocessorBound)

	// --- 2. Online admission control -------------------------------
	// The admission test is O(stages), independent of how many tasks
	// are active.
	sim := feasregion.NewSimulator()
	ctrl := feasregion.NewController(sim, region, nil)
	admitted, rejected := 0, 0
	for i := 0; i < 2000; i++ {
		// Each request: 2 ms + 5 ms + 2 ms of stage work, 100 ms deadline.
		t := feasregion.Chain(feasregion.TaskID(i), sim.Now(), 0.100, 0.002, 0.005, 0.002)
		if ctrl.TryAdmit(t) {
			admitted++
		} else {
			rejected++
		}
	}
	fmt.Printf("burst of 2000 concurrent requests: %d admitted, %d rejected\n", admitted, rejected)
	fmt.Printf("synthetic utilizations after the burst: %.3v\n\n", ctrl.Utilizations())

	// --- 3. End-to-end simulation ----------------------------------
	// A Poisson stream at 150% of stage capacity; the controller sheds
	// the excess and every admitted task meets its deadline.
	sim = feasregion.NewSimulator()
	p := feasregion.NewPipeline(sim, feasregion.PipelineOptions{Stages: 3})
	spec := feasregion.WorkloadSpec{Stages: 3, Load: 1.5, MeanDemand: 1, Resolution: 100}
	src := feasregion.NewSource(sim, spec, 42, 2000, func(t *feasregion.Task) { p.Offer(t) })
	sim.At(200, func() { p.BeginMeasurement() })
	var m feasregion.PipelineMetrics
	sim.At(2000, func() { m = p.Snapshot() })
	src.Start()
	sim.Run()

	fmt.Printf("simulated 3-stage pipeline at 150%% offered load:\n")
	fmt.Printf("  accepted %.1f%% of arrivals\n", m.AcceptRatio*100)
	fmt.Printf("  mean real stage utilization %.3f\n", m.MeanUtilization)
	fmt.Printf("  deadline misses among admitted tasks: %d of %d completed\n", m.Missed, m.Completed)
}
