// TSCE: the paper's §5 Total Ship Computing Environment scenario
// (Table 1), end to end:
//
//  1. Certify the critical mission tasks (Weapon Detection, Weapon
//     Targeting, UAV Video) by reserving synthetic utilization
//     (0.40, 0.25, 0.10) and checking Eq. 13 -> 0.93 ≤ 1.
//  2. Run the mission system with the critical streams executing against
//     the reservation while Target Tracking tasks are admitted
//     dynamically through a 200 ms wait-queue admission controller.
//  3. Ramp the track count and report where rejections begin — the
//     paper reports ≈550 concurrent tracks with stage 1 (tracking) as
//     the bottleneck at ≈95% utilization.
//
// Run with: go run ./examples/tsce
package main

import (
	"fmt"

	feasregion "feasregion"
)

func main() {
	scenario := feasregion.NewTSCE()

	// --- 1. Certification ------------------------------------------
	reserved := scenario.ReservedUtilization()
	region := feasregion.NewRegion(3)
	fmt.Println("critical task reservation (Weapon Detection + Weapon Targeting + UAV Video):")
	for j, u := range reserved {
		fmt.Printf("  stage %d: reserved U=%.2f, f(U)=%.4f\n", j+1, u, feasregion.StageDelayFactor(u))
	}
	fmt.Printf("Eq. 13 value: %.4f ≤ %.0f -> critical set CERTIFIED\n\n", region.Value(reserved), region.Bound())

	// --- 2 & 3. Dynamic track admission ------------------------------
	fmt.Println("ramping concurrent Target Tracking tasks (1 ms/track/s, D=1s, 200 ms admission hold):")
	fmt.Println("tracks  stage1-util  rejected  missed")
	for _, tracks := range []int{200, 400, 500, 550, 600, 650} {
		util, rejected, missed := runMission(scenario, tracks)
		fmt.Printf("%6d  %11.3f  %8d  %6d\n", tracks, util, rejected, missed)
	}
	fmt.Println("\nRejections appear only as stage 1 approaches saturation; up to that")
	fmt.Println("point the idle reset lets the admission controller run the tracking")
	fmt.Println("stage at ≈95% real utilization — the paper's ≈550-track capacity.")
}

// runMission simulates the mission system with the given number of
// tracks for 20 seconds and returns stage-1 utilization, admission
// rejections, and deadline misses.
func runMission(scenario feasregion.TSCE, tracks int) (stage1Util float64, rejected, missed uint64) {
	sim := feasregion.NewSimulator()
	p := feasregion.NewPipeline(sim, feasregion.PipelineOptions{
		Stages:   3,
		Reserved: scenario.ReservedUtilization(),
		MaxWait:  scenario.AdmissionHold,
	})
	rng := feasregion.NewRNG(11)
	var id feasregion.TaskID
	const horizon = 20.0
	scenario.ScheduleReserved(sim, rng, horizon, &id, p.Inject)
	scenario.ScheduleTracking(sim, rng, tracks, horizon, &id, func(t *feasregion.Task) { p.Offer(t) })

	sim.At(4, func() { p.BeginMeasurement() })
	var m feasregion.PipelineMetrics
	sim.At(horizon, func() { m = p.Snapshot() })
	sim.Run()

	return m.StageUtilization[0], p.WaitQueue().Stats().TimedOut, m.Missed
}
