// Httpserver: the wall-clock admission controller in a real service.
//
// Unlike the other examples (which run on the simulated clock), this one
// spins up an actual net/http server whose handler pushes work through
// two serialized backend stages — an application stage and a database
// stage, each a single worker goroutine — and guards the front door with
// the online feasible-region admission controller:
//
//   - every request declares a response-time goal (its deadline) and
//     per-stage cost estimates;
//   - admitted requests are processed end to end; rejected ones get 503
//     immediately (fail fast instead of queueing into a missed goal);
//   - stage-idle callbacks drive the paper's synthetic-utilization reset;
//   - a background watchdog reconciles the ledgers against leaks, the
//     production safety net for lost departure callbacks.
//
// The demo fires a few thousand concurrent requests at twice the
// service's capacity and reports acceptance, goal violations among
// accepted requests, and tail latency.
//
// Run with: go run ./examples/httpserver
package main

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	feasregion "feasregion"
)

var (
	errStageBusy   = errors.New("stage queue full")
	errStageClosed = errors.New("stage closed")
)

// stage is a single-worker backend stage: requests queue FIFO and a
// dedicated goroutine "executes" each job by sleeping its cost. The
// idle callback is wired after construction (SetOnIdle) and may be nil;
// Close stops the worker so the stage cannot leak its goroutine.
type stage struct {
	name    string
	jobs    chan job
	pending atomic.Int64
	done    chan struct{}
	closing sync.Once

	mu     sync.Mutex
	onIdle func()
}

type job struct {
	cost time.Duration
	done chan struct{}
}

func newStage(name string, queue int) *stage {
	s := &stage{name: name, jobs: make(chan job, queue), done: make(chan struct{})}
	go s.work()
	return s
}

// SetOnIdle wires the drained-queue callback; before it is called (or
// with a nil fn) idle transitions are simply not reported.
func (s *stage) SetOnIdle(fn func()) {
	s.mu.Lock()
	s.onIdle = fn
	s.mu.Unlock()
}

func (s *stage) work() {
	for {
		select {
		case <-s.done:
			return
		case j := <-s.jobs:
			time.Sleep(j.cost)
			close(j.done)
			if s.pending.Add(-1) == 0 {
				s.mu.Lock()
				fn := s.onIdle
				s.mu.Unlock()
				if fn != nil {
					fn()
				}
			}
		}
	}
}

// Close stops the worker goroutine; idempotent. In-flight run calls
// return errStageClosed instead of blocking forever.
func (s *stage) Close() {
	s.closing.Do(func() { close(s.done) })
}

// run executes cost on the stage and blocks until done. A full queue
// fails fast with errStageBusy rather than blocking the caller into a
// blown deadline — backpressure belongs at admission, not in a hidden
// unbounded wait.
func (s *stage) run(cost time.Duration) error {
	j := job{cost: cost, done: make(chan struct{})}
	s.pending.Add(1)
	select {
	case s.jobs <- j:
	case <-s.done:
		s.pending.Add(-1)
		return errStageClosed
	default:
		s.pending.Add(-1)
		return errStageBusy
	}
	select {
	case <-j.done:
		return nil
	case <-s.done:
		return errStageClosed
	}
}

func main() {
	const (
		appCost  = 2 * time.Millisecond
		dbCost   = 3 * time.Millisecond
		deadline = 60 * time.Millisecond
	)

	// Stages exist before the controller: until SetOnIdle wires them,
	// idle transitions are silently (and safely) unreported.
	app := newStage("app", 4096)
	db := newStage("db", 4096)
	defer db.Close()
	defer app.Close()

	ctrl := feasregion.NewOnlineController(feasregion.NewRegion(2), nil, nil)
	app.SetOnIdle(func() { ctrl.StageIdle(0) })
	db.SetOnIdle(func() { ctrl.StageIdle(1) })

	// Self-healing: reconcile the ledgers periodically so a leaked
	// contribution (a handler that crashed between admit and release)
	// cannot pin synthetic utilization forever.
	stopWatchdog := ctrl.StartWatchdog(25 * time.Millisecond)
	defer stopWatchdog()

	var nextID atomic.Uint64
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := nextID.Add(1)
		ok := ctrl.TryAdmit(feasregion.OnlineRequest{
			ID:       id,
			Deadline: deadline,
			Demands:  []time.Duration{appCost, dbCost},
		})
		if !ok {
			http.Error(w, "over capacity", http.StatusServiceUnavailable)
			return
		}
		// On any backend failure the admission charge is released so the
		// region does not bleed capacity.
		if err := app.run(appCost); err != nil {
			ctrl.Release(id)
			http.Error(w, "app stage unavailable", http.StatusServiceUnavailable)
			return
		}
		ctrl.MarkDeparted(0, id)
		if err := db.run(dbCost); err != nil {
			ctrl.Release(id)
			http.Error(w, "db stage unavailable", http.StatusServiceUnavailable)
			return
		}
		ctrl.MarkDeparted(1, id)
		fmt.Fprintln(w, "ok")
	})

	srv := httptest.NewServer(handler)
	defer srv.Close() // before the stage Closes: drain requests, then stop workers

	// Client side: 1500 requests at roughly 2x the db stage's capacity
	// (capacity ≈ 1/dbCost ≈ 333 req/s; we offer ≈ 660 req/s).
	const total = 1500
	gap := 1500 * time.Microsecond
	var (
		mu        sync.Mutex
		latencies []time.Duration
		accepted  int
		rejected  int
		violated  int
	)
	var wg sync.WaitGroup
	client := srv.Client()
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			resp, err := client.Get(srv.URL)
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			elapsed := time.Since(start)
			mu.Lock()
			defer mu.Unlock()
			if resp.StatusCode == http.StatusOK {
				accepted++
				latencies = append(latencies, elapsed)
				if elapsed > deadline {
					violated++
				}
			} else {
				rejected++
			}
		}()
		time.Sleep(gap)
	}
	wg.Wait()

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		idx := int(p * float64(len(latencies)-1))
		return latencies[idx]
	}

	fmt.Printf("offered %d requests at ≈2x capacity, %v response-time goal\n", total, deadline)
	fmt.Printf("  accepted: %d (%.1f%%), rejected with 503: %d\n",
		accepted, 100*float64(accepted)/total, rejected)
	fmt.Printf("  goal violations among accepted: %d\n", violated)
	fmt.Printf("  latency p50 %v, p95 %v, p99 %v\n", pct(0.50), pct(0.95), pct(0.99))
	s := ctrl.Stats()
	fmt.Printf("  controller: %d admitted, %d rejected, %d reconcile passes, final utilizations %.3v\n",
		s.Admitted, s.Rejected, s.Reconciles, ctrl.Utilizations())
	fmt.Println("\nEvery accepted request met (or came close to) its goal because the")
	fmt.Println("controller bounded each stage's synthetic utilization; the excess")
	fmt.Println("was refused up front instead of queueing everyone into failure.")
}
