// Httpserver: the wall-clock admission controller in a real service,
// now with the observability loop closed.
//
// Unlike the other examples (which run on the simulated clock), this one
// spins up an actual net/http server whose handler pushes work through
// two serialized backend stages — an application stage and a database
// stage, each a single worker goroutine — and guards the front door with
// the online feasible-region admission controller:
//
//   - every request declares a response-time goal (its deadline) and
//     per-stage cost estimates;
//   - admitted requests are processed end to end; rejected ones get 503
//     immediately (fail fast instead of queueing into a missed goal);
//   - stage-idle callbacks drive the paper's synthetic-utilization reset;
//   - a background watchdog reconciles the ledgers against leaks, the
//     production safety net for lost departure callbacks;
//   - a /metrics endpoint exports the controller's counters, per-stage
//     synthetic utilization, region headroom, and request latency
//     histograms in Prometheus text format;
//   - a stage-health monitor watches each stage's actual service time
//     against its declared cost and drives the controller's per-stage
//     demand scale when a stage degrades — admission throttles itself
//     instead of over-admitting into a slow backend;
//   - a closed-loop adaptive estimator reads the per-stage sojourn and
//     service histograms and folds any delay Theorem 1 did not predict
//     into the region's β_j terms (THEORY.md §7) — the region itself
//     tightens when the service misbehaves, and only ever tightens, so
//     the admitted-task guarantee survives;
//   - a background scraper polls /metrics throughout the load, standing
//     in for Prometheus: scrapes read the controller's seqlock mirror,
//     so monitoring never contends with admission;
//   - a webhook-style fan-in admits a whole burst of arrivals with one
//     TryAdmitAll call — one lock acquisition and one expiry purge
//     amortized across the batch.
//
// The demo fires a few thousand concurrent requests at twice the
// service's capacity, degrades the db stage 3x for the middle of the
// run, and reports acceptance, goal violations, tail latency, what the
// health monitor did, and a slice of the /metrics page.
//
// Run with: go run ./examples/httpserver
package main

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	feasregion "feasregion"
)

var (
	errStageBusy   = errors.New("stage queue full")
	errStageClosed = errors.New("stage closed")
)

// stage is a single-worker backend stage: requests queue FIFO and a
// dedicated goroutine "executes" each job by sleeping its cost. The
// idle callback is wired after construction (SetOnIdle) and may be nil;
// Close stops the worker so the stage cannot leak its goroutine.
// slowdown (in units of 1/100) models a degraded backend: the worker
// multiplies every job's cost by slowdown/100.
type stage struct {
	name     string
	jobs     chan job
	pending  atomic.Int64
	slowdown atomic.Int64 // cost multiplier ×100; 100 = nominal
	done     chan struct{}
	closing  sync.Once

	// observe, when non-nil, receives (declared cost, actual service
	// time) for every executed job — the stage-health monitor's input.
	observe func(declared, actual time.Duration)

	mu     sync.Mutex
	onIdle func()
}

type job struct {
	cost time.Duration
	done chan struct{}
}

func newStage(name string, queue int) *stage {
	s := &stage{name: name, jobs: make(chan job, queue), done: make(chan struct{})}
	s.slowdown.Store(100)
	go s.work()
	return s
}

// SetOnIdle wires the drained-queue callback; before it is called (or
// with a nil fn) idle transitions are simply not reported.
func (s *stage) SetOnIdle(fn func()) {
	s.mu.Lock()
	s.onIdle = fn
	s.mu.Unlock()
}

func (s *stage) work() {
	for {
		select {
		case <-s.done:
			return
		case j := <-s.jobs:
			start := time.Now()
			time.Sleep(j.cost * time.Duration(s.slowdown.Load()) / 100)
			if s.observe != nil {
				s.observe(j.cost, time.Since(start))
			}
			close(j.done)
			if s.pending.Add(-1) == 0 {
				s.mu.Lock()
				fn := s.onIdle
				s.mu.Unlock()
				if fn != nil {
					fn()
				}
			}
		}
	}
}

// Close stops the worker goroutine; idempotent. In-flight run calls
// return errStageClosed instead of blocking forever.
func (s *stage) Close() {
	s.closing.Do(func() { close(s.done) })
}

// run executes cost on the stage and blocks until done. A full queue
// fails fast with errStageBusy rather than blocking the caller into a
// blown deadline — backpressure belongs at admission, not in a hidden
// unbounded wait.
func (s *stage) run(cost time.Duration) error {
	j := job{cost: cost, done: make(chan struct{})}
	s.pending.Add(1)
	select {
	case s.jobs <- j:
	case <-s.done:
		s.pending.Add(-1)
		return errStageClosed
	default:
		s.pending.Add(-1)
		return errStageBusy
	}
	select {
	case <-j.done:
		return nil
	case <-s.done:
		return errStageClosed
	}
}

func main() {
	const (
		appCost  = 2 * time.Millisecond
		dbCost   = 3 * time.Millisecond
		deadline = 60 * time.Millisecond
	)

	// Stages exist before the controller: until SetOnIdle wires them,
	// idle transitions are silently (and safely) unreported.
	app := newStage("app", 4096)
	db := newStage("db", 4096)
	defer db.Close()
	defer app.Close()

	ctrl := feasregion.NewOnlineController(feasregion.NewRegion(2), nil, nil)
	app.SetOnIdle(func() { ctrl.StageIdle(0) })
	db.SetOnIdle(func() { ctrl.StageIdle(1) })

	// Observability: one registry serves /metrics; the controller
	// describes itself with read-on-scrape series, the handler adds
	// request counters and a latency histogram.
	reg := feasregion.NewMetricsRegistry()
	ctrl.RegisterMetrics(reg)
	reqOK := reg.Counter("httpserver_requests_ok_total", "requests served within the pipeline")
	reqRejected := reg.Counter("httpserver_requests_rejected_total", "requests refused 503 at admission")
	latency := reg.Histogram("httpserver_request_duration_seconds", "end-to-end handler latency",
		feasregion.ExponentialBuckets(0.001, 2, 10))

	// Stage-health feedback: the monitor compares each stage's actual
	// service time against its declared cost and scales the controller's
	// admission demands when a stage degrades — the online analogue of
	// the -run health experiment.
	mon := feasregion.NewStageHealthMonitor(feasregion.StageHealthConfig{
		Stages:           2,
		Alpha:            0.3,
		MinSamples:       10,
		DegradeThreshold: 1.5,
		RecoverThreshold: 1.15,
		MaxScale:         8,
	}, ctrl)
	mon.SetMetrics(reg)

	// Closed-loop region adaptation: per-stage sojourn (submit → done)
	// and pure-service histograms feed the β estimator, which normalizes
	// any tail delay Theorem 1's f(U_j)·Dref does not explain into the
	// region's blocking terms. The health monitor rescales *demands*;
	// the adaptive loop tightens the *region* — they compose.
	sojournBuckets := feasregion.ExponentialBuckets(0.0005, 2, 12)
	var sojournHist, serviceHist [2]interface {
		Observe(float64)
		Quantile(float64) float64
		Count() uint64
	}
	for j := 0; j < 2; j++ {
		lbl := feasregion.MetricLabel{Name: "stage", Value: strconv.Itoa(j)}
		sojournHist[j] = reg.Histogram("httpserver_stage_sojourn_seconds",
			"stage submit-to-completion time", sojournBuckets, lbl)
		serviceHist[j] = reg.Histogram("httpserver_stage_service_seconds",
			"stage pure service time", sojournBuckets, lbl)
	}
	adaptLoop := feasregion.NewAdaptiveLoop(
		feasregion.AdaptiveConfig{
			DeadlineRef: deadline.Seconds(),
			Beta:        feasregion.AdaptiveBetaConfig{Enabled: true, MinSamples: 25},
		},
		feasregion.NewRegion(2), ctrl,
		feasregion.AdaptiveSources{
			SojournQuantile: func(j int, q float64) float64 { return sojournHist[j].Quantile(q) },
			SojournCount:    func(j int) uint64 { return sojournHist[j].Count() },
			ServiceQuantile: func(j int, q float64) float64 { return serviceHist[j].Quantile(q) },
			StageUtilization: func(j int) float64 {
				return ctrl.Utilizations()[j]
			},
		})
	adaptLoop.SetMetrics(reg)
	stopAdapt := adaptLoop.Start(20 * time.Millisecond)
	defer stopAdapt()

	app.observe = func(declared, actual time.Duration) {
		mon.Observe(0, declared.Seconds(), actual.Seconds())
		serviceHist[0].Observe(actual.Seconds())
	}
	db.observe = func(declared, actual time.Duration) {
		mon.Observe(1, declared.Seconds(), actual.Seconds())
		serviceHist[1].Observe(actual.Seconds())
	}

	// Self-healing: reconcile the ledgers periodically so a leaked
	// contribution (a handler that crashed between admit and release)
	// cannot pin synthetic utilization forever.
	stopWatchdog := ctrl.StartWatchdog(25 * time.Millisecond)
	defer stopWatchdog()

	var nextID atomic.Uint64
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := nextID.Add(1)
		ok := ctrl.TryAdmit(feasregion.OnlineRequest{
			ID:       id,
			Deadline: deadline,
			Demands:  []time.Duration{appCost, dbCost},
		})
		if !ok {
			reqRejected.Inc()
			http.Error(w, "over capacity", http.StatusServiceUnavailable)
			return
		}
		// On any backend failure the admission charge is released so the
		// region does not bleed capacity.
		appStart := time.Now()
		if err := app.run(appCost); err != nil {
			ctrl.Release(id)
			http.Error(w, "app stage unavailable", http.StatusServiceUnavailable)
			return
		}
		sojournHist[0].Observe(time.Since(appStart).Seconds())
		ctrl.MarkDeparted(0, id)
		dbStart := time.Now()
		if err := db.run(dbCost); err != nil {
			ctrl.Release(id)
			http.Error(w, "db stage unavailable", http.StatusServiceUnavailable)
			return
		}
		sojournHist[1].Observe(time.Since(dbStart).Seconds())
		ctrl.MarkDeparted(1, id)
		reqOK.Inc()
		latency.Observe(time.Since(start).Seconds())
		fmt.Fprintln(w, "ok")
	})

	srv := httptest.NewServer(mux)
	defer srv.Close() // before the stage Closes: drain requests, then stop workers

	// Client side: 1500 requests at roughly 2x the db stage's capacity
	// (capacity ≈ 1/dbCost ≈ 333 req/s; we offer ≈ 660 req/s). For the
	// middle third the db backend runs 3x slow — the health monitor
	// should notice and throttle admission instead of letting accepted
	// requests pile into the slow stage.
	const total = 1500
	gap := 1500 * time.Microsecond
	var (
		mu        sync.Mutex
		latencies []time.Duration
		accepted  int
		rejected  int
		violated  int
	)
	var wg sync.WaitGroup
	client := srv.Client()

	// Background monitoring during the load: poll /metrics the way a
	// Prometheus scraper would. Scrapes read the controller's seqlock
	// mirror, so this loop never contends with the admission hot path.
	scrapeStop := make(chan struct{})
	scrapeDone := make(chan struct{})
	var scrapes, scrapeFailures int
	go func() {
		defer close(scrapeDone)
		ticker := time.NewTicker(10 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-scrapeStop:
				return
			case <-ticker.C:
				resp, err := client.Get(srv.URL + "/metrics")
				if err != nil {
					scrapeFailures++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				scrapes++
			}
		}
	}()

	for i := 0; i < total; i++ {
		switch i {
		case total / 3:
			db.slowdown.Store(300)
		case 2 * total / 3:
			db.slowdown.Store(100)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			resp, err := client.Get(srv.URL)
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			elapsed := time.Since(start)
			mu.Lock()
			defer mu.Unlock()
			if resp.StatusCode == http.StatusOK {
				accepted++
				latencies = append(latencies, elapsed)
				if elapsed > deadline {
					violated++
				}
			} else {
				rejected++
			}
		}()
		time.Sleep(gap)
	}
	wg.Wait()
	close(scrapeStop)
	<-scrapeDone

	// Batched admission: a webhook fan-in hands the service a burst of
	// events in one delivery. TryAdmitAll tests the whole batch under a
	// single lock acquisition and purge, each event against the state
	// left by its predecessors, and reports per-event outcomes.
	const burst = 64
	batch := make([]feasregion.OnlineRequest, burst)
	outcomes := make([]bool, burst)
	for i := range batch {
		batch[i] = feasregion.OnlineRequest{
			ID:       nextID.Add(1),
			Deadline: deadline,
			Demands:  []time.Duration{appCost, dbCost},
		}
	}
	burstAdmitted := ctrl.TryAdmitAll(batch, outcomes)
	for i, ok := range outcomes {
		if ok { // demo only: release instead of processing the event
			ctrl.Release(batch[i].ID)
		}
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		idx := int(p * float64(len(latencies)-1))
		return latencies[idx]
	}

	fmt.Printf("offered %d requests at ≈2x capacity, %v response-time goal, db 3x slow for the middle third\n", total, deadline)
	fmt.Printf("  accepted: %d (%.1f%%), rejected with 503: %d\n",
		accepted, 100*float64(accepted)/total, rejected)
	fmt.Printf("  goal violations among accepted: %d\n", violated)
	fmt.Printf("  latency p50 %v, p95 %v, p99 %v\n", pct(0.50), pct(0.95), pct(0.99))
	s := ctrl.Stats()
	fmt.Printf("  controller: %d admitted, %d rejected, %d reconcile passes, final utilizations %.3v\n",
		s.Admitted, s.Rejected, s.Reconciles, ctrl.Utilizations())
	dbHealth := mon.Health(1)
	fmt.Printf("  health monitor: %d scale changes, max scale %.3g, db stage ratio EWMA %.3g (scale now %.3g)\n",
		mon.ScaleChanges(), mon.MaxScaleApplied(), dbHealth.Ratio, dbHealth.Scale)
	as := adaptLoop.Snapshot()
	fmt.Printf("  adaptive loop: %d ticks, %d region updates, applied α %.3g, β %.3v (region bound now %.3g)\n",
		as.Ticks, as.RegionUpdates, as.Alpha, as.Betas, ctrl.Region().Bound())
	fmt.Printf("  background scraper: %d /metrics polls during the load (%d failed) — lock-free reads\n",
		scrapes, scrapeFailures)
	fmt.Printf("  webhook burst: TryAdmitAll admitted %d/%d events in one lock acquisition\n",
		burstAdmitted, burst)

	// Scrape /metrics the way Prometheus would and sanity-check the page.
	resp, err := client.Get(srv.URL + "/metrics")
	if err != nil {
		fmt.Println("scraping /metrics:", err)
		return
	}
	defer resp.Body.Close()
	series, samples := 0, 0
	var shown []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			fmt.Printf("  UNPARSEABLE metrics line: %q\n", line)
			return
		}
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			fmt.Printf("  UNPARSEABLE metrics value: %q\n", line)
			return
		}
		samples++
		if strings.HasPrefix(line, "feasregion_online_") || strings.HasPrefix(line, "httpserver_requests_") {
			series++
			if len(shown) < 8 {
				shown = append(shown, line)
			}
		}
	}
	fmt.Printf("\n/metrics: %d samples, all parseable; a slice:\n", samples)
	for _, line := range shown {
		fmt.Println("  " + line)
	}

	fmt.Println("\nThe admission controller bounded each stage's synthetic utilization;")
	fmt.Println("when the db backend degraded, the health monitor raised that stage's")
	fmt.Println("demand scale and the adaptive loop folded the unexplained sojourn")
	fmt.Println("tail into the region's β terms — admission throttled itself instead")
	fmt.Println("of accepting requests into a backlog they could never clear in time.")
}
