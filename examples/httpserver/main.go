// Httpserver: the wall-clock admission controller in a real service.
//
// Unlike the other examples (which run on the simulated clock), this one
// spins up an actual net/http server whose handler pushes work through
// two serialized backend stages — an application stage and a database
// stage, each a single worker goroutine — and guards the front door with
// the online feasible-region admission controller:
//
//   - every request declares a response-time goal (its deadline) and
//     per-stage cost estimates;
//   - admitted requests are processed end to end; rejected ones get 503
//     immediately (fail fast instead of queueing into a missed goal);
//   - stage-idle callbacks drive the paper's synthetic-utilization reset.
//
// The demo fires a few thousand concurrent requests at twice the
// service's capacity and reports acceptance, goal violations among
// accepted requests, and tail latency.
//
// Run with: go run ./examples/httpserver
package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	feasregion "feasregion"
)

// stage is a single-worker backend stage: requests queue FIFO and a
// dedicated goroutine "executes" each job by sleeping its cost.
type stage struct {
	name    string
	jobs    chan job
	pending atomic.Int64
	onIdle  func()
}

type job struct {
	cost time.Duration
	done chan struct{}
}

func newStage(name string, onIdle func()) *stage {
	s := &stage{name: name, jobs: make(chan job, 4096), onIdle: onIdle}
	go func() {
		for j := range s.jobs {
			time.Sleep(j.cost)
			close(j.done)
			if s.pending.Add(-1) == 0 {
				s.onIdle()
			}
		}
	}()
	return s
}

// run executes cost on the stage and blocks until done.
func (s *stage) run(cost time.Duration) {
	j := job{cost: cost, done: make(chan struct{})}
	s.pending.Add(1)
	s.jobs <- j
	<-j.done
}

func main() {
	const (
		appCost  = 2 * time.Millisecond
		dbCost   = 3 * time.Millisecond
		deadline = 60 * time.Millisecond
	)

	ctrl := feasregion.NewOnlineController(feasregion.NewRegion(2), nil, nil)
	var app, db *stage
	app = newStage("app", func() { ctrl.StageIdle(0) })
	db = newStage("db", func() { ctrl.StageIdle(1) })

	var nextID atomic.Uint64
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := nextID.Add(1)
		ok := ctrl.TryAdmit(feasregion.OnlineRequest{
			ID:       id,
			Deadline: deadline,
			Demands:  []time.Duration{appCost, dbCost},
		})
		if !ok {
			http.Error(w, "over capacity", http.StatusServiceUnavailable)
			return
		}
		app.run(appCost)
		ctrl.MarkDeparted(0, id)
		db.run(dbCost)
		ctrl.MarkDeparted(1, id)
		fmt.Fprintln(w, "ok")
	})

	srv := httptest.NewServer(handler)
	defer srv.Close()

	// Client side: 1500 requests at roughly 2x the db stage's capacity
	// (capacity ≈ 1/dbCost ≈ 333 req/s; we offer ≈ 660 req/s).
	const total = 1500
	gap := 1500 * time.Microsecond
	var (
		mu        sync.Mutex
		latencies []time.Duration
		accepted  int
		rejected  int
		violated  int
	)
	var wg sync.WaitGroup
	client := srv.Client()
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			resp, err := client.Get(srv.URL)
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			elapsed := time.Since(start)
			mu.Lock()
			defer mu.Unlock()
			if resp.StatusCode == http.StatusOK {
				accepted++
				latencies = append(latencies, elapsed)
				if elapsed > deadline {
					violated++
				}
			} else {
				rejected++
			}
		}()
		time.Sleep(gap)
	}
	wg.Wait()

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		idx := int(p * float64(len(latencies)-1))
		return latencies[idx]
	}

	fmt.Printf("offered %d requests at ≈2x capacity, %v response-time goal\n", total, deadline)
	fmt.Printf("  accepted: %d (%.1f%%), rejected with 503: %d\n",
		accepted, 100*float64(accepted)/total, rejected)
	fmt.Printf("  goal violations among accepted: %d\n", violated)
	fmt.Printf("  latency p50 %v, p95 %v, p99 %v\n", pct(0.50), pct(0.95), pct(0.99))
	s := ctrl.Stats()
	fmt.Printf("  controller: %d admitted, %d rejected, final utilizations %.3v\n",
		s.Admitted, s.Rejected, ctrl.Utilizations())
	fmt.Println("\nEvery accepted request met (or came close to) its goal because the")
	fmt.Println("controller bounded each stage's synthetic utilization; the excess")
	fmt.Println("was refused up front instead of queueing everyone into failure.")
}
