// Cluster: a replica fleet that routes on admission headroom and
// scales on admission pressure.
//
// One feasible-region controller guards one pipeline. A fleet wraps a
// controller per replica, and two signals fall out of the region for
// free: each replica publishes its *headroom* (region bound minus
// current region value — how much more work it could promise deadlines
// for), and the fleet aggregates headroom plus router reject rate into
// an autoscaling signal. Routing and scaling both run on admission
// capacity, not CPU counters.
//
// This example starts a 3-replica fleet under a light steady load,
// then hits it with a flash crowd at several times the fleet's
// admissible capacity for 200 simulated seconds. Power-of-two-choices placement
// spreads the surge by probing two published snapshots per arrival;
// the autoscaler sees headroom collapse and rejects appear, grows the
// fleet replica by replica (fast up), and after the crowd passes
// drains the extras back out one slow step at a time (drain, finish
// admitted work, remove). The output prints every scaler transition as
// it happens and the per-replica headroom/placement picture at the
// end.
//
// Run with: go run ./examples/cluster
package main

import (
	"fmt"
	"sort"

	feasregion "feasregion"
)

func main() {
	sim := feasregion.NewSimulator()
	cp := feasregion.NewClusterPipeline(sim, feasregion.ClusterPipelineOptions{
		Stages:   3,
		Replicas: 3,
		Policy:   feasregion.RoutePowerOfTwo,
		Seed:     7,
		Scaler: feasregion.AutoscalerConfig{
			Min: 2, Max: 8,
			UpHeadroomFrac: 0.2, UpRejectRate: 0.05, UpAfter: 2,
			DownHeadroomFrac: 0.7, DownAfter: 8, Cooldown: 4,
		},
	})

	const (
		horizon    = 900.0
		crowdStart = 200.0
		crowdLen   = 200.0
		interval   = 5.0
	)

	cp.Cluster().Autoscaler().OnTransition(func(tr feasregion.AutoscalerTransition) {
		fmt.Printf("t=%-5.0f %-9s replica %d  (active %d, headroom frac %.2f, reject rate %.2f)\n",
			float64(tr.Tick)*interval, tr.Action, tr.Replica, tr.Active, tr.HeadroomFrac, tr.RejectRate)
	})

	base := feasregion.WorkloadSpec{Stages: 3, Load: 0.8, MeanDemand: 1, Resolution: 15}
	crowd := feasregion.WorkloadSpec{Stages: 3, Load: 6.0, MeanDemand: 1, Resolution: 15}
	offer := func(t *feasregion.Task) { cp.Offer(t) }
	steady := feasregion.NewSource(sim, base, 1, horizon, offer)
	flash := feasregion.NewSource(sim, crowd, 2, crowdStart+crowdLen, offer)
	flash.SetFirstID(1 << 32)

	sim.At(crowdStart, func() {
		fmt.Printf("t=%-5.0f flash crowd begins (%.1fx fleet steady load)\n", crowdStart, crowd.Load/base.Load)
		flash.Start()
	})
	sim.At(crowdStart+crowdLen, func() {
		fmt.Printf("t=%-5.0f flash crowd ends\n", crowdStart+crowdLen)
	})
	sim.At(0, func() { cp.BeginMeasurement() })
	cp.ScheduleScaler(interval, horizon)

	fmt.Println("scaler transitions:")
	steady.Start()
	sim.Run()

	m := cp.Snapshot()
	fmt.Printf("\nfleet over %d offered tasks: admitted %d (%.0f%%), completed %d, deadline misses %d\n",
		m.Offered, m.Admitted, 100*float64(m.Admitted)/float64(m.Offered), m.Completed, m.Missed)
	fmt.Printf("router: %d placed (%d rollbacks), %d rejected\n\n",
		m.Router.Placed, m.Router.Rollbacks, m.Router.Rejected)

	ids := make([]int, 0, len(m.Replicas))
	for id := range m.Replicas {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fmt.Println("replica  state     placed  headroom")
	for _, id := range ids {
		rm := m.Replicas[id]
		fmt.Printf("%-8d %-9s %-7d %.3f\n", id, rm.State, rm.Placed, rm.Headroom)
	}
}
