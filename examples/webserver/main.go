// Webserver: admission control for a multi-tier server.
//
// The paper's §1 motivating example: "requests on a web server must be
// processed by both the front-end and several tiers of back-end servers
// that execute the business logic and interact with database services."
//
// This example models a 3-tier service (front-end → application tier →
// database) serving a mixed workload:
//
//   - static page hits: cheap, tight response-time goal,
//   - API calls: moderate cost, moderate deadline,
//   - report generation: expensive, relaxed deadline,
//
// and compares the feasible-region admission controller against running
// the same traffic with no admission control. With admission control the
// server sacrifices a fraction of throughput to guarantee that every
// accepted request meets its response-time goal; without it, overload
// spreads misses across all classes.
//
// Run with: go run ./examples/webserver
package main

import (
	"fmt"

	feasregion "feasregion"
)

// class describes one request class.
type class struct {
	name     string
	deadline float64    // response-time goal (seconds)
	demands  [3]float64 // front-end, app tier, database (seconds)
	rate     float64    // arrivals per second
}

var classes = []class{
	{"static", 0.050, [3]float64{0.002, 0.001, 0.000}, 400},
	{"api", 0.250, [3]float64{0.003, 0.015, 0.010}, 40},
	{"report", 2.000, [3]float64{0.005, 0.120, 0.180}, 2.5},
}

func main() {
	fmt.Println("3-tier web service: front-end -> app tier -> database")
	for _, c := range classes {
		fmt.Printf("  %-7s rate %5.1f/s  deadline %5.0f ms  demands %v\n",
			c.name, c.rate, c.deadline*1000, c.demands)
	}
	fmt.Println()

	withAC := run(true)
	withoutAC := run(false)

	fmt.Println("per-class outcome with admission control:")
	fmt.Printf("  %-8s %9s %9s %7s\n", "class", "offered", "entered", "missed")
	for _, name := range []string{"static", "api", "report"} {
		cm := withAC.ByClass[name]
		fmt.Printf("  %-8s %9d %9d %7d\n", name, cm.Offered, cm.Entered, cm.Missed)
	}
	fmt.Println()
	fmt.Println("                         with admission   no admission")
	fmt.Printf("accepted                 %13.1f%%   %12.1f%%\n", withAC.AcceptRatio*100, withoutAC.AcceptRatio*100)
	fmt.Printf("deadline miss ratio      %14.4f   %13.4f\n", withAC.MissRatio, withoutAC.MissRatio)
	fmt.Printf("mean tier utilization    %14.3f   %13.3f\n", withAC.MeanUtilization, withoutAC.MeanUtilization)
	fmt.Printf("mean response time (ms)  %14.1f   %13.1f\n",
		withAC.ResponseTimes.Mean()*1000, withoutAC.ResponseTimes.Mean()*1000)
	fmt.Println("\nWith the feasible region, every accepted request met its goal;")
	fmt.Println("the no-admission server completed more requests but broke its")
	fmt.Println("response-time guarantees under the same traffic.")
}

func run(admission bool) feasregion.PipelineMetrics {
	sim := feasregion.NewSimulator()
	p := feasregion.NewPipeline(sim, feasregion.PipelineOptions{
		Stages:      3,
		NoAdmission: !admission,
	})

	// One Poisson stream per class; demands jitter ±50% around the
	// class profile (uniform on mean·[0.5, 1.5]).
	specs := make([]feasregion.ClassSpec, 0, len(classes))
	for _, c := range classes {
		demands := make([]feasregion.Distribution, 3)
		for j, mean := range c.demands {
			if mean == 0 {
				demands[j] = feasregion.NewDeterministic(0)
			} else {
				demands[j] = feasregion.NewUniform(mean*0.5, mean*1.5)
			}
		}
		specs = append(specs, feasregion.ClassSpec{
			Name:     c.name,
			Rate:     c.rate,
			Demands:  demands,
			Deadline: feasregion.NewDeterministic(c.deadline),
		})
	}
	const horizon = 120.0 // two minutes of traffic
	feasregion.NewMixedSource(sim, 3, specs, 7, 0, horizon, func(t *feasregion.Task) { p.Offer(t) })

	sim.At(10, func() { p.BeginMeasurement() })
	var m feasregion.PipelineMetrics
	sim.At(horizon, func() { m = p.Snapshot() })
	sim.Run()
	return m
}
