// Overload: semantic-importance load shedding (paper §5).
//
// The paper's TSCE architecture decouples the *scheduling* priority
// inside the system (deadline-monotonic, optimal for meeting deadlines)
// from the *semantic* priority of tasks (which work matters most to the
// mission). When an important arrival would push the system outside the
// feasible region, the admission controller sheds less important current
// work — least important first — until the arrival fits:
//
//	"Less important load in the system can be immediately shed in
//	 reverse order of semantic importance until the system returns into
//	 the feasible region and admits the new arrival."
//
// This example runs a saturated single-stage system carrying routine
// telemetry (importance 1) and navigation updates (importance 5), then
// injects a burst of critical threat-response tasks (importance 10). It
// shows that (a) critical tasks were admitted through the saturation,
// (b) telemetry was sacrificed before navigation, and (c) admitted tasks
// still met their deadlines.
//
// Run with: go run ./examples/overload
package main

import (
	"fmt"

	feasregion "feasregion"
)

func main() {
	sim := feasregion.NewSimulator()
	rec := feasregion.NewTraceRecorder(0)
	p := feasregion.NewPipeline(sim, feasregion.PipelineOptions{
		Stages:         1,
		EnableShedding: true,
		Trace:          rec,
	})
	sim.At(0, func() { p.BeginMeasurement() })

	rng := feasregion.NewRNG(21)
	var id feasregion.TaskID

	offerStream := func(name string, importance, rate, demand, deadline, from, to float64) {
		stream := rng.Split()
		at := from
		var next func()
		next = func() {
			at += stream.ExpFloat64() / rate
			if at > to {
				return
			}
			sim.At(at, func() {
				t := feasregion.Chain(id, at, deadline, demand*(0.5+stream.Float64()))
				t.Class = name
				t.Importance = importance
				id++
				p.Offer(t)
				next()
			})
		}
		next()
	}

	// Background load that roughly fills the region.
	offerStream("telemetry", 1, 30, 0.010, 0.3, 0, 60)
	offerStream("navigation", 5, 10, 0.020, 0.5, 0, 60)
	// A threat-response burst between t=20 and t=25: 40 critical tasks
	// per second, each needing 8 ms within a 100 ms deadline.
	offerStream("threat-response", 10, 40, 0.008, 0.1, 20, 25)

	var m feasregion.PipelineMetrics
	sim.At(60, func() { m = p.Snapshot() })
	sim.Run()

	fmt.Println("60 s of saturated operation with a 5 s critical burst (t=20..25):")
	fmt.Printf("%-16s %8s %9s %6s %7s\n", "class", "offered", "entered", "shed", "missed")
	for _, name := range []string{"telemetry", "navigation", "threat-response"} {
		cm := m.ByClass[name]
		fmt.Printf("%-16s %8d %9d %6d %7d\n", name, cm.Offered, cm.Entered, cm.Shed, cm.Missed)
	}
	fmt.Printf("\nstage utilization %.3f; completed %d; deadline misses %d; shed mid-flight %d\n",
		m.MeanUtilization, m.Completed, m.Missed, m.Shed)
	fmt.Printf("trace recorded %d events\n", rec.Len())

	if m.ByClass["telemetry"].Shed < m.ByClass["navigation"].Shed {
		fmt.Println("WARNING: shedding order violated (telemetry should go first)")
	}
	fmt.Println("\nDuring the burst the controller evicted routine telemetry to keep")
	fmt.Println("the system inside the feasible region, so critical work was")
	fmt.Println("admitted without pre-reserving capacity for it.")
}
