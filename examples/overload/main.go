// Overload: degrade before you reject (imprecise computation + the
// overload governor).
//
// The paper's admission test is all-or-nothing: an arrival whose full
// demand vector falls outside the feasible region is rejected, or
// already-admitted work is evicted whole. The imprecise-computation
// extension splits every stage demand into a mandatory and an optional
// part (C = M + O) and lets *quality* absorb the surge instead: under
// pressure the overload governor walks a quality cap down a discrete
// ladder, new arrivals are admitted degraded, in-flight tasks are
// trimmed toward mandatory-only, and whole-task eviction is reserved
// for the Shedding state when everyone is already at the floor.
//
// This example runs a single-stage service carrying a steady imprecise
// workload, then hits it with a 10-second flash crowd at ~5x the
// feasible load. Watch the governor's ladder transitions: Normal →
// Degraded as headroom evaporates, quality stepping down, then the
// monotone one-step-per-tick restore after the crowd passes. The
// punchline is the last table: nearly every flash-crowd request is
// served (at reduced quality) with almost no evictions and zero
// deadline misses.
//
// Run with: go run ./examples/overload
package main

import (
	"fmt"

	feasregion "feasregion"
)

func main() {
	sim := feasregion.NewSimulator()
	p := feasregion.NewPipeline(sim, feasregion.PipelineOptions{
		Stages:         1,
		EnableShedding: true,
		Governor:       &feasregion.GovernorConfig{},
	})
	sim.At(0, func() { p.BeginMeasurement() })

	g := p.Governor()
	g.OnTransition(func(from, to feasregion.GovernorState) {
		fmt.Printf("t=%5.1fs  governor %s -> %s (quality cap %d/%d)\n",
			sim.Now(), from, to, g.QualityCap(), feasregion.QualityLevels)
	})
	g.ScheduleSim(sim, 1, 60)

	rng := feasregion.NewRNG(21)
	var id feasregion.TaskID

	// Every request marks 80% of its demand optional: mandatory-only
	// execution delivers MandatoryUtility (half) of its value at a fifth
	// of its cost.
	offerStream := func(name string, importance, rate, demand, deadline, from, to float64) {
		stream := rng.Split()
		at := from
		var next func()
		next = func() {
			at += stream.ExpFloat64() / rate
			if at > to {
				return
			}
			sim.At(at, func() {
				t := feasregion.Chain(id, at, deadline, demand*(0.5+stream.Float64()))
				t.Class = name
				t.Importance = importance
				t.SetOptionalFraction(0.8)
				id++
				p.Offer(t)
				next()
			})
		}
		next()
	}

	// Steady load holding roughly half the region.
	offerStream("steady", 5, 30, 0.010, 0.5, 0, 60)
	// The flash crowd: t=20..30 at ~5x the steady rate.
	offerStream("flash-crowd", 1, 150, 0.010, 0.5, 20, 30)

	// Sample the quality cap for a timeline of the ladder.
	caps := map[float64]int{}
	for _, at := range []float64{5, 15, 22, 25, 28, 32, 36, 40, 50} {
		sampleAt := at
		sim.At(sampleAt, func() { caps[sampleAt] = g.QualityCap() })
	}

	var m feasregion.PipelineMetrics
	sim.At(60, func() { m = p.Snapshot() })
	sim.Run()

	fmt.Println("\nquality cap over time:")
	for _, at := range []float64{5, 15, 22, 25, 28, 32, 36, 40, 50} {
		fmt.Printf("  t=%4.0fs cap %d\n", at, caps[at])
	}

	fmt.Println("\n60 s with a 10 s flash crowd at ~5x feasible load (t=20..30):")
	fmt.Printf("%-12s %8s %9s %6s %7s\n", "class", "offered", "entered", "shed", "missed")
	for _, name := range []string{"steady", "flash-crowd"} {
		cm := m.ByClass[name]
		fmt.Printf("%-12s %8d %9d %6d %7d\n", name, cm.Offered, cm.Entered, cm.Shed, cm.Missed)
	}
	fmt.Printf("\nadmitted degraded %d; in-flight trims %d; evictions %d\n",
		m.Degraded, m.TrimmedTasks, m.Shed)
	fmt.Printf("completed %d; deadline misses %d; utility delivered %.1f (of %d admitted)\n",
		m.Completed, m.Missed, m.UtilityDelivered, m.EnteredService)
	st := g.Stats()
	fmt.Printf("governor: %d ticks, %d degrade steps, %d restore steps, %d transitions\n",
		st.Ticks, st.DegradeSteps, st.RestoreSteps, st.Transitions)

	fmt.Println("\nThe governor traded quality for admission: the flash crowd was")
	fmt.Println("served at reduced quality instead of being rejected or evicting")
	fmt.Println("the steady workload, and quality climbed back one step per quiet")
	fmt.Println("tick once the crowd passed.")
}
