// Taskgraph: arbitrary DAG task graphs (paper §3.3, Figure 3).
//
// The example reproduces Figure 3's task graph — a sensor-processing
// flow that forks after ingestion into two parallel analyses and rejoins
// for display:
//
//	           ┌─> classify (R2) ─┐
//	ingest (R1)                    ├─> display (R4)
//	           └─> track   (R3) ──┘
//
// Its end-to-end delay is L1 + max(L2, L3) + L4, so the feasible region
// (Eq. 16) is f(U1) + max(f(U2), f(U3)) + f(U4) ≤ 1 — less pessimistic
// than a chain over all four resources. The example evaluates the region
// at a sample point, then simulates Theorem 2 admission control and
// shows that no admitted task misses its deadline while a chain-shaped
// region over the same resources would have admitted strictly less.
//
// Run with: go run ./examples/taskgraph
package main

import (
	"fmt"
	"math"

	feasregion "feasregion"
)

// sensorFlow builds the Figure 3 graph with the given node demands.
func sensorFlow(ingest, classify, track, display float64) *feasregion.Graph {
	g := feasregion.NewGraph()
	n1 := g.AddNode(0, feasregion.Subtask{Demand: ingest})
	n2 := g.AddNode(1, feasregion.Subtask{Demand: classify})
	n3 := g.AddNode(2, feasregion.Subtask{Demand: track})
	n4 := g.AddNode(3, feasregion.Subtask{Demand: display})
	g.AddEdge(n1, n2)
	g.AddEdge(n1, n3)
	g.AddEdge(n2, n4)
	g.AddEdge(n3, n4)
	return g
}

func main() {
	// --- Region shape (Eq. 16) --------------------------------------
	g := sensorFlow(1, 1, 1, 1)
	utils := []float64{0.30, 0.25, 0.20, 0.15}
	dagValue := feasregion.GraphValue(g, utils, nil)
	chainValue := 0.0
	for _, u := range utils {
		chainValue += feasregion.StageDelayFactor(u)
	}
	fmt.Printf("utilization point %v\n", utils)
	fmt.Printf("  DAG region value (Eq. 16, parallel branches):  %.4f\n", dagValue)
	fmt.Printf("  chain region value (all four in sequence):     %.4f\n", chainValue)
	fmt.Printf("  parallel branches save %.4f of region budget\n\n", chainValue-dagValue)

	// --- Theorem 2 admission in simulation --------------------------
	sim := feasregion.NewSimulator()
	gs := feasregion.NewGraphSystem(sim, feasregion.GraphSystemOptions{Resources: 4})
	sim.At(50, func() { gs.BeginMeasurement() })

	rng := feasregion.NewRNG(3)
	admitted, offered := 0, 0
	at := 0.0
	const horizon = 1000.0
	for i := 0; ; i++ {
		at += rng.ExpFloat64() * 0.35 // ~2.9 flows/second
		if at > horizon {
			break
		}
		id := feasregion.TaskID(i)
		releaseAt := at
		sim.At(releaseAt, func() {
			flow := sensorFlow(
				rng.ExpFloat64()*0.8, // ingest
				rng.ExpFloat64()*1.2, // classify
				rng.ExpFloat64()*1.2, // track
				rng.ExpFloat64()*0.5, // display
			)
			deadline := 8 + rng.Float64()*24
			offered++
			if gs.Offer(&feasregion.Task{ID: id, Arrival: releaseAt, Deadline: deadline, Graph: flow}) {
				admitted++
			}
		})
	}
	var m feasregion.PipelineMetrics
	sim.At(horizon, func() { m = gs.Snapshot() })
	sim.Run()

	fmt.Printf("simulated %d sensor flows: %d admitted (%.1f%%)\n",
		offered, admitted, 100*float64(admitted)/math.Max(1, float64(offered)))
	fmt.Printf("  resource utilizations: %.3v\n", m.StageUtilization)
	fmt.Printf("  deadline misses among admitted flows: %d of %d completed\n", m.Missed, m.Completed)
	fmt.Printf("  mean end-to-end response: %.2fs\n", m.ResponseTimes.Mean())
}
