// Package feasregion implements the schedulability analysis and
// admission control of "A Feasible Region for Meeting Aperiodic
// End-to-End Deadlines in Resource Pipelines" (Abdelzaher, Thaker,
// Lardieri — ICDCS 2004), together with the discrete-event resource-
// pipeline simulator used to evaluate it.
//
// # The model
//
// Aperiodic tasks arrive at an N-stage resource pipeline; task i arrives
// at time A_i, needs C_ij time units of computation at stage j, and must
// depart the last stage within a relative end-to-end deadline D_i. The
// synthetic utilization of stage j at time t is
//
//	U_j(t) = Σ_{current tasks} C_ij / D_i
//
// where a task is current from its arrival to its absolute deadline.
//
// # The feasible region
//
// All end-to-end deadlines are met under any fixed-priority scheduling
// policy while the utilization point (U_1, ..., U_N) satisfies
//
//	Σ_j f(U_j) ≤ α · (1 − Σ_j β_j),   f(U) = U(1−U/2)/(1−U)
//
// with α the policy's urgency-inversion parameter (1 for deadline-
// monotonic) and β_j the per-stage normalized blocking under the
// priority ceiling protocol (0 for independent tasks). For one stage the
// region reduces to the uniprocessor aperiodic bound U ≤ 1/(1+√½).
// Theorem 2 generalizes the condition to arbitrary DAG task graphs via
// the longest-path delay expression.
//
// # What the package provides
//
// The exported API (this package) offers the region mathematics
// (StageDelayFactor, Region, GraphValue, Alpha, Betas), the online
// admission controllers (NewController, NewGraphController, NewWaitQueue)
// with deadline-decrement and idle-reset accounting, the task and
// task-graph model, a deterministic discrete-event simulator of
// preemptive fixed-priority resource pipelines (NewSimulator,
// NewPipeline, NewGraphSystem), and workload generators including the
// paper's TSCE Table 1 mission scenario (NewTSCE).
//
// The admission test is O(N) in the number of stages and independent of
// the number of active tasks, making it suitable for systems with
// thousands of concurrent tasks.
//
// # Quick start
//
//	sim := feasregion.NewSimulator()
//	p := feasregion.NewPipeline(sim, feasregion.PipelineOptions{Stages: 3})
//	admitted := p.Offer(feasregion.Chain(1, sim.Now(), 0.5, 0.01, 0.02, 0.01))
//
// See examples/ for runnable scenarios and cmd/experiments for the
// harness that regenerates every figure and table of the paper.
package feasregion
