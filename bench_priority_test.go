package feasregion_test

import (
	"testing"

	"feasregion/internal/dist"
	"feasregion/internal/priority"
	"feasregion/internal/task"
)

// Priority-assignment benchmarks: the offline Audsley search cost as
// the task set grows (O(n²) test invocations, each O(N·n)), and the
// online admitter's steady-state admit path, which must stay at
// 0 allocs/op (the scratch slices are retained between calls).
//
// `make bench-priority` emits these as BENCH_priority.json.

// benchCandidates builds a seeded full-span candidate set that is
// feasible but loaded — the search runs all n levels with non-trivial
// interference sets rather than bailing at level 0.
func benchCandidates(n, stages int, seed int64) []priority.Candidate {
	g := dist.NewRNG(seed)
	cands := make([]priority.Candidate, n)
	for i := range cands {
		d := make([]float64, stages)
		for j := range d {
			// Total per-stage utilization across n tasks ≈ 0.15.
			d[j] = 0.45 / float64(n) * g.ExpFloat64()
		}
		cands[i] = priority.Candidate{
			ID:       task.ID(i + 1),
			Deadline: 1 + 4*g.Float64(),
			Demands:  d,
		}
	}
	return cands
}

func benchAssign(b *testing.B, n int) {
	cands := benchCandidates(n, 3, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := priority.Assign(cands, 3, priority.RegionExact{}); err != nil {
			b.Fatalf("assign: %v", err)
		}
	}
}

func BenchmarkPriorityAssign8(b *testing.B)   { benchAssign(b, 8) }
func BenchmarkPriorityAssign32(b *testing.B)  { benchAssign(b, 32) }
func BenchmarkPriorityAssign128(b *testing.B) { benchAssign(b, 128) }

// BenchmarkPriorityAdmit measures the online admitter's steady-state
// TryAdmit on a churning mixed-deadline stream (admissions, rejections,
// and lazy expiries all on the measured path). Acceptance floor:
// 0 allocs/op once the retained scratch buffers are warm.
func BenchmarkPriorityAdmit(b *testing.B) {
	const stages = 3
	a := priority.NewAdmitter(stages, priority.ModeOPA, nil, nil)
	g := dist.NewRNG(7)
	now := 0.0
	// One reused task value: the admitter never retains the *Task, so
	// mutating it in place keeps the harness itself allocation-free.
	tk := task.Chain(0, 0, 1, make([]float64, stages)...)
	next := func(id int) {
		now += g.ExpFloat64() * 0.3
		tk.ID = task.ID(id)
		tk.Arrival = now
		tk.Deadline = 2 + 6*g.Float64()
		for j := range tk.Subtasks {
			tk.Subtasks[j].Demand = 0.3 * g.ExpFloat64()
		}
	}
	// Warm the retained buffers past the steady-state population.
	for i := 0; i < 4096; i++ {
		next(i + 1)
		a.TryAdmit(tk)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next(4097 + i)
		a.TryAdmit(tk)
	}
}
