package feasregion_test

import (
	"fmt"
	"time"

	feasregion "feasregion"
)

// The paper's §5 worked example: three stages reserve synthetic
// utilization (0.40, 0.25, 0.10); the region value 0.93 ≤ 1 certifies
// the critical task set.
func ExampleRegion() {
	region := feasregion.NewRegion(3)
	point := []float64{0.40, 0.25, 0.10}
	fmt.Printf("value = %.2f, certified = %v\n", region.Value(point), region.Contains(point))
	// Output: value = 0.93, certified = true
}

// f(U) at the uniprocessor bound is exactly 1, which is why the
// single-stage region reduces to U ≤ 1/(1+√½).
func ExampleStageDelayFactor() {
	fmt.Printf("f(0.5) = %.2f\n", feasregion.StageDelayFactor(0.5))
	fmt.Printf("f(bound) = %.0f\n", feasregion.StageDelayFactor(feasregion.UniprocessorBound))
	// Output:
	// f(0.5) = 0.75
	// f(bound) = 1
}

// Online admission: each task adds C_j/D per stage; the controller
// admits while the utilization point stays inside the region.
func ExampleController() {
	sim := feasregion.NewSimulator()
	ctrl := feasregion.NewController(sim, feasregion.NewRegion(2), nil)

	admitted := 0
	for i := 0; i < 10; i++ {
		// C = (1, 1), D = 4: contribution 0.25 per stage.
		if ctrl.TryAdmit(feasregion.Chain(feasregion.TaskID(i), 0, 4, 1, 1)) {
			admitted++
		}
	}
	fmt.Printf("admitted %d of 10 concurrent tasks\n", admitted)
	// Output: admitted 1 of 10 concurrent tasks
}

// Giving top priority to a long-deadline task inverts urgency: α is the
// worst deadline ratio across priority-ordered pairs.
func ExampleAlpha() {
	alpha := feasregion.Alpha([]feasregion.TaskParams{
		{Priority: 0, Deadline: 10}, // most urgent priority, longest deadline
		{Priority: 1, Deadline: 2},
	})
	fmt.Printf("alpha = %.1f\n", alpha)
	// Output: alpha = 0.2
}

// Figure 3's DAG: the end-to-end delay is L1 + max(L2, L3) + L4, so the
// feasible region takes the worst branch rather than the sum of all four
// stages (Eq. 16).
func ExampleGraphValue() {
	g := feasregion.NewGraph()
	n1 := g.AddNode(0, feasregion.Subtask{Demand: 1})
	n2 := g.AddNode(1, feasregion.Subtask{Demand: 1})
	n3 := g.AddNode(2, feasregion.Subtask{Demand: 1})
	n4 := g.AddNode(3, feasregion.Subtask{Demand: 1})
	g.AddEdge(n1, n2)
	g.AddEdge(n1, n3)
	g.AddEdge(n2, n4)
	g.AddEdge(n3, n4)

	utils := []float64{0.3, 0.2, 0.2, 0.1}
	fmt.Printf("DAG value = %.3f, feasible = %v\n",
		feasregion.GraphValue(g, utils, nil),
		feasregion.GraphFeasible(g, utils, nil, 1))
	// Output: DAG value = 0.695, feasible = true
}

// Blocking terms for Eq. 15: a 2-unit critical section of a
// lower-priority task normalized by the higher-priority task's deadline.
func ExampleBetas() {
	betas := feasregion.Betas(1, []feasregion.BlockingTaskInfo{
		{Priority: 1, Deadline: 10, Sections: []feasregion.CriticalSection{{Stage: 0, Lock: 1, Duration: 0.5}}},
		{Priority: 5, Deadline: 50, Sections: []feasregion.CriticalSection{{Stage: 0, Lock: 1, Duration: 2}}},
	})
	fmt.Printf("beta = %.2f\n", betas[0])
	// Output: beta = 0.20
}

// A complete simulation: tasks flow through two stages under
// deadline-monotonic scheduling with exact admission control.
func ExampleNewPipeline() {
	sim := feasregion.NewSimulator()
	p := feasregion.NewPipeline(sim, feasregion.PipelineOptions{Stages: 2})
	sim.At(0, func() { p.BeginMeasurement() })
	sim.At(0, func() {
		p.Offer(feasregion.Chain(1, 0, 10, 1, 2)) // admitted
		p.Offer(feasregion.Chain(2, 0, 10, 9, 9)) // rejected: too large
	})
	sim.Run()

	m := p.Snapshot()
	fmt.Printf("completed %d, missed %d, response %.0f\n",
		m.Completed, m.Missed, m.ResponseTimes.Mean())
	// Output: completed 1, missed 0, response 3
}

// Headroom answers "how much more load fits on this stage right now".
func ExampleRegion_Headroom() {
	region := feasregion.NewRegion(2)
	utils := []float64{0.30, 0.10}
	fmt.Printf("stage 1 headroom = %.3f\n", region.Headroom(utils, 0))
	// Output: stage 1 headroom = 0.253
}

// The wall-clock controller guards a real service: requests declare a
// response-time goal and per-stage cost estimates; the region decides.
func ExampleOnlineController() {
	base := time.Unix(0, 0)
	now := base
	clock := func() time.Time { return now }

	ctrl := feasregion.NewOnlineController(feasregion.NewRegion(2), nil, clock)
	admit := func(id uint64) bool {
		return ctrl.TryAdmit(feasregion.OnlineRequest{
			ID:       id,
			Deadline: 100 * time.Millisecond,
			Demands:  []time.Duration{10 * time.Millisecond, 20 * time.Millisecond},
		})
	}
	fmt.Println("r1:", admit(1))          // (0.1, 0.2): fits
	fmt.Println("r2:", admit(2))          // (0.2, 0.4): f(0.2)+f(0.4) ≈ 0.76, fits
	fmt.Println("r3:", admit(3))          // would reach (0.3, 0.6): f sums past 1
	now = now.Add(150 * time.Millisecond) // r1 and r2 deadlines pass
	fmt.Println("r4:", admit(4))
	// Output:
	// r1: true
	// r2: true
	// r3: false
	// r4: true
}

// Batch admission commits a whole burst under one decision: requests
// are tested in order against the shared budget, and batch release
// returns their capacity in a single pass.
func ExampleOnlineController_TryAdmitAll() {
	clock := func() time.Time { return time.Unix(0, 0) }
	ctrl := feasregion.NewOnlineController(feasregion.NewRegion(2), nil, clock)

	reqs := make([]feasregion.OnlineRequest, 3)
	for i := range reqs {
		reqs[i] = feasregion.OnlineRequest{
			ID:       uint64(i + 1),
			Deadline: 100 * time.Millisecond,
			Demands:  []time.Duration{10 * time.Millisecond, 20 * time.Millisecond},
		}
	}
	out := make([]bool, len(reqs))
	fmt.Println("admitted:", ctrl.TryAdmitAll(reqs, out), out)

	// The burst finished early: release both admitted requests at once.
	fmt.Println("released:", ctrl.ReleaseAll([]uint64{1, 2}))
	fmt.Println("retry:   ", ctrl.TryAdmit(reqs[2]))
	// Output:
	// admitted: 2 [true true false]
	// released: 2
	// retry:    true
}

// The adaptive loop turns live telemetry into region inputs: when the
// observed sojourn tail shows blocking the analysis did not account
// for, the β estimator tightens the admission bound α(1−Σβ) — and
// never relaxes it past the configured base region.
func ExampleAdaptiveLoop() {
	clock := func() time.Time { return time.Unix(0, 0) }
	ctrl := feasregion.NewOnlineController(feasregion.NewRegion(1), nil, clock)

	samples := uint64(0)
	tail := 0.0 // observed p99 sojourn time, seconds
	loop := feasregion.NewAdaptiveLoop(
		feasregion.AdaptiveConfig{
			DeadlineRef: 1, // 1-second reference deadline
			Beta:        feasregion.AdaptiveBetaConfig{Enabled: true, MinSamples: 1, TightenWeight: 1},
		},
		feasregion.NewRegion(1),
		ctrl, // both controllers implement RegionSink
		feasregion.AdaptiveSources{
			SojournQuantile: func(stage int, q float64) float64 { return tail },
			SojournCount:    func(stage int) uint64 { return samples },
		},
	)

	fmt.Printf("bound: %.2f\n", ctrl.Bound())
	samples, tail = 100, 0.5 // half the deadline spent blocked
	loop.Tick()
	fmt.Printf("bound: %.2f\n", ctrl.Bound()) // β capped at 0.25: α(1−β) = 0.75
	// Output:
	// bound: 1.00
	// bound: 0.75
}

// The demand estimator watches per-class overrun detections and
// inflates the class's admission-time demand estimates
// (multiplicative-increase, additive-decrease around the tolerated
// rate), replacing a hand-tuned static tolerance.
func ExampleAdaptiveLoop_demandInflation() {
	clock := func() time.Time { return time.Unix(0, 0) }
	ctrl := feasregion.NewOnlineController(feasregion.NewRegion(1), nil, clock)

	overruns := map[string]uint64{}
	admitted := map[string]uint64{}
	loop := feasregion.NewAdaptiveLoop(
		feasregion.AdaptiveConfig{
			Demand: feasregion.AdaptiveDemandConfig{Enabled: true, MinSamples: 10},
		},
		feasregion.NewRegion(1), ctrl,
		feasregion.AdaptiveSources{
			OverrunsByClass: func() map[string]uint64 { return overruns },
			AdmittedByClass: func() map[string]uint64 { return admitted },
		},
	)

	// A window where 30% of the "batch" class overran its estimates:
	admitted["batch"] += 20
	overruns["batch"] += 6
	loop.Tick()
	fmt.Printf("after overruns: %.3f\n", loop.ClassInflation("batch"))

	// A quiet window decays the inflation additively:
	admitted["batch"] += 20
	loop.Tick()
	fmt.Printf("after quiet:    %.3f\n", loop.ClassInflation("batch"))
	// Output:
	// after overruns: 1.500
	// after quiet:    1.375
}
