package feasregion_test

import (
	"container/heap"
	"math"
	"testing"

	"feasregion/internal/des"
	"feasregion/internal/dist"
)

// Event-core benchmarks: the before/after for the calendar rebuild.
// `heapSim` below is a frozen copy of the pre-rewrite des.Simulator hot
// path (container/heap calendar, one *Event allocation per schedule,
// closure dispatch), kept so every future run re-measures the "before"
// on current hardware instead of trusting a stale number. The
// BenchmarkDes* pairs measure, heap vs ladder:
//
//   - SelfClocking: n independent recurring timers (the arrival-source
//     shape that dominates replay) firing and rescheduling — pure
//     schedule+fire throughput at a steady calendar population;
//   - ScheduleDrain: bulk-schedule n random events, then drain — the
//     insert- then pop-heavy phases separately exercised;
//   - CancelHeavy: schedule, cancel half, drain — the watchdog pattern
//     (most timers are disarmed before they fire).
//
// The ladder rows must report 0 allocs/op on the Timer dispatch path;
// the acceptance floor for the rebuild is ≥ 3× the frozen heap's
// self-clocking event throughput. `make bench-des` emits these as
// BENCH_des.json.

// --- frozen pre-rewrite implementation (trimmed to the measured path) ---

type heapEvent struct {
	time      float64
	seq       uint64
	index     int
	fn        func()
	cancelled bool
}

type heapEventQueue []*heapEvent

func (q heapEventQueue) Len() int { return len(q) }

func (q heapEventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}

func (q heapEventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *heapEventQueue) Push(x any) {
	e := x.(*heapEvent)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *heapEventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

type heapSim struct {
	queue heapEventQueue
	now   float64
	seq   uint64
}

func (s *heapSim) At(t float64, fn func()) *heapEvent {
	e := &heapEvent{time: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

func (s *heapSim) Cancel(e *heapEvent) {
	if e == nil || e.cancelled || e.index < 0 {
		return
	}
	e.cancelled = true
	heap.Remove(&s.queue, e.index)
	e.index = -1
}

func (s *heapSim) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*heapEvent)
		if e.cancelled {
			continue
		}
		s.now = e.time
		e.fn()
		return true
	}
	return false
}

// --- workload shapes ---

// benchStreams is the steady calendar population for the self-clocking
// shape: the event core's working set in a large replay.
const benchStreams = 1024

// heapTicker is one self-rescheduling stream on the frozen heap.
type heapTicker struct {
	sim  *heapSim
	rng  *dist.RNG
	fire func()
}

func benchHeapSelfClocking(b *testing.B, streams int) {
	s := &heapSim{}
	for i := 0; i < streams; i++ {
		t := &heapTicker{sim: s, rng: dist.NewRNG(int64(i + 1))}
		t.fire = func() {
			s.At(s.now+t.rng.ExpFloat64(), t.fire)
		}
		s.At(t.rng.ExpFloat64(), t.fire)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// ladderTicker is the same stream on the current core's Timer path.
type ladderTicker struct {
	sim *des.Simulator
	rng *dist.RNG
}

func (t *ladderTicker) Fire(now des.Time) {
	t.sim.AtTimer(now+t.rng.ExpFloat64(), t)
}

func benchLadderSelfClocking(b *testing.B, streams int) {
	s := des.New()
	for i := 0; i < streams; i++ {
		t := &ladderTicker{sim: s, rng: dist.NewRNG(int64(i + 1))}
		s.AtTimer(t.rng.ExpFloat64(), t)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkDesHeapSelfClocking(b *testing.B)   { benchHeapSelfClocking(b, benchStreams) }
func BenchmarkDesLadderSelfClocking(b *testing.B) { benchLadderSelfClocking(b, benchStreams) }

// nop is the shared no-op payload for drain shapes.
type nop struct{}

func (nop) Fire(des.Time) {}

var sharedNop nop

func BenchmarkDesHeapScheduleDrain(b *testing.B) {
	rng := dist.NewRNG(7)
	cb := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := &heapSim{}
		for j := 0; j < benchStreams; j++ {
			s.At(rng.Float64()*1000, cb)
		}
		for s.Step() {
		}
	}
}

func BenchmarkDesLadderScheduleDrain(b *testing.B) {
	rng := dist.NewRNG(7)
	s := des.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := s.Now()
		for j := 0; j < benchStreams; j++ {
			s.AtTimer(base+rng.Float64()*1000, sharedNop)
		}
		for s.Step() {
		}
	}
}

func BenchmarkDesHeapCancelHeavy(b *testing.B) {
	rng := dist.NewRNG(11)
	cb := func() {}
	events := make([]*heapEvent, benchStreams)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := &heapSim{}
		for j := range events {
			events[j] = s.At(rng.Float64()*1000, cb)
		}
		for j := 0; j < len(events); j += 2 {
			s.Cancel(events[j])
		}
		for s.Step() {
		}
	}
}

func BenchmarkDesLadderCancelHeavy(b *testing.B) {
	rng := dist.NewRNG(11)
	s := des.New()
	events := make([]des.Event, benchStreams)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := s.Now()
		for j := range events {
			events[j] = s.AtTimer(base+rng.Float64()*1000, sharedNop)
		}
		for j := 0; j < len(events); j += 2 {
			s.Cancel(events[j])
		}
		for s.Step() {
		}
	}
}

// TestDesLadderSelfClockingZeroAlloc pins the tentpole's allocation
// claim outside the benchmark harness: a warmed simulator driving
// recurring Timer streams must not allocate per event.
func TestDesLadderSelfClockingZeroAlloc(t *testing.T) {
	s := des.New()
	for i := 0; i < 64; i++ {
		tk := &ladderTicker{sim: s, rng: dist.NewRNG(int64(i + 1))}
		s.AtTimer(tk.rng.ExpFloat64(), tk)
	}
	for i := 0; i < 100_000; i++ { // warm the arena, rungs, and bottom
		s.Step()
	}
	per := testing.AllocsPerRun(2000, func() { s.Step() })
	if per != 0 {
		t.Fatalf("steady-state Step allocates %v per event, want 0", per)
	}
}

// TestDesBenchShapesAgree cross-checks that both cores drain the drain
// shapes to the same final clock — guarding the benchmark pair against
// measuring different work.
func TestDesBenchShapesAgree(t *testing.T) {
	rng1 := dist.NewRNG(3)
	rng2 := dist.NewRNG(3)
	h := &heapSim{}
	l := des.New()
	for j := 0; j < 4096; j++ {
		h.At(rng1.Float64()*500, func() {})
		l.AtTimer(rng2.Float64()*500, sharedNop)
	}
	for h.Step() {
	}
	for l.Step() {
	}
	if math.Abs(h.now-l.Now()) != 0 {
		t.Fatalf("final clocks differ: heap %v, ladder %v", h.now, l.Now())
	}
}
