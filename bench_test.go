package feasregion_test

import (
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	feasregion "feasregion"
	"feasregion/internal/analysis"
	"feasregion/internal/core"
	"feasregion/internal/des"
	"feasregion/internal/dist"
	"feasregion/internal/experiments"
	"feasregion/internal/online"
	"feasregion/internal/sched"
	"feasregion/internal/task"
	"feasregion/internal/workload"
)

// Benchmarks, one per paper table/figure plus the paper's complexity
// claims. Figure benches run a reduced-scale sweep per iteration and
// report the headline metric via b.ReportMetric so `go test -bench`
// regenerates the result; cmd/experiments produces the full tables.

// benchScale keeps per-iteration cost moderate.
var benchScale = experiments.Scale{Horizon: 600, Warmup: 100, Replications: 1}

// BenchmarkFig4PipelineLength regenerates Figure 4's headline point: the
// real stage utilization at 100% input load, for 1- and 5-stage
// pipelines (reported as util_n1 and util_n5 — near-equal values are the
// paper's "pipeline length does not hurt" claim).
func BenchmarkFig4PipelineLength(b *testing.B) {
	cfg := experiments.Fig4Config{
		Loads:      []float64{1.0},
		Lengths:    []int{1, 5},
		Resolution: 50,
		Scale:      benchScale,
		Seed:       1,
	}
	var res experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res = experiments.Fig4(cfg)
	}
	b.ReportMetric(res.Util[1][0], "util_n1")
	b.ReportMetric(res.Util[5][0], "util_n5")
}

// BenchmarkFig5TaskResolution regenerates Figure 5's spread: accepted
// utilization at resolution 2 vs 100 under 200% load.
func BenchmarkFig5TaskResolution(b *testing.B) {
	cfg := experiments.Fig5Config{
		Resolutions: []float64{2, 100},
		Loads:       []float64{2.0},
		Scale:       benchScale,
		Seed:        2,
	}
	var res experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res = experiments.Fig5(cfg)
	}
	b.ReportMetric(res.Util[0][0], "util_res2")
	b.ReportMetric(res.Util[0][1], "util_res100")
}

// BenchmarkFig6LoadImbalance regenerates Figure 6's contrast: bottleneck
// utilization balanced vs 8:1 imbalanced.
func BenchmarkFig6LoadImbalance(b *testing.B) {
	cfg := experiments.Fig6Config{
		Ratios:     []float64{1, 8},
		Load:       1.2,
		Resolution: 50,
		Scale:      benchScale,
		Seed:       3,
	}
	var res experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res = experiments.Fig6(cfg)
	}
	b.ReportMetric(res.Bottleneck[0], "util_balanced")
	b.ReportMetric(res.Bottleneck[1], "util_imbalanced8x")
}

// BenchmarkFig7ApproximateAdmission regenerates Figure 7's headline: the
// miss ratio under mean-based admission at high resolution (≈0) and at
// coarse resolution.
func BenchmarkFig7ApproximateAdmission(b *testing.B) {
	cfg := experiments.Fig7Config{
		Resolutions: []float64{2, 100},
		Loads:       []float64{2.0},
		Scale:       benchScale,
		Seed:        4,
	}
	var res experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res = experiments.Fig7(cfg)
	}
	b.ReportMetric(res.MissRatio[0][0], "miss_res2")
	b.ReportMetric(res.MissRatio[0][1], "miss_res100")
}

// BenchmarkTable1TSCE regenerates the §5 simulation at the paper's
// operating point: 550 tracks alongside the certified critical tasks,
// reporting stage-1 utilization (paper: ≈0.95) and rejections (0).
func BenchmarkTable1TSCE(b *testing.B) {
	cfg := experiments.Table1Config{
		Tracks:  []int{550},
		Horizon: 10,
		Warmup:  2,
		Seed:    5,
	}
	var res experiments.Table1Result
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res = experiments.Table1TrackCapacity(cfg)
	}
	b.ReportMetric(res.Points[0].Stage1Util, "stage1_util")
	b.ReportMetric(float64(res.Points[0].TimedOut), "rejected")
	b.ReportMetric(float64(res.Points[0].Missed), "missed")
}

// BenchmarkAblationIdleReset contrasts admitted utilization with and
// without the idle reset at 150% load.
func BenchmarkAblationIdleReset(b *testing.B) {
	spec := workload.PipelineSpec{Stages: 2, Load: 1.5, MeanDemand: 1, Resolution: 50}
	run := func(disable bool, seed int64) float64 {
		pt := experiments.RunPipelinePoint(spec, func(*des.Simulator) feasregion.PipelineOptions {
			return feasregion.PipelineOptions{Stages: 2, DisableIdleReset: disable}
		}, benchScale, seed)
		return pt.MeanUtil.Mean
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = run(false, int64(i+1))
		without = run(true, int64(i+1))
	}
	b.ReportMetric(with, "util_with_reset")
	b.ReportMetric(without, "util_without_reset")
}

// BenchmarkAdmissionDecisionTaskCount validates the O(N) complexity
// claim: the cost of one admission decision must not grow with the
// number of active tasks in the system (here 10 → 100 000).
func BenchmarkAdmissionDecisionTaskCount(b *testing.B) {
	for _, active := range []int{10, 1_000, 100_000} {
		b.Run(benchName("active", active), func(b *testing.B) {
			sim := des.New()
			c := core.NewController(sim, core.NewRegion(3), nil)
			// Preload the ledgers with `active` tiny tasks.
			for i := 0; i < active; i++ {
				if err := c.ForceAdmit(task.Chain(task.ID(i), 0, 1e9, 1, 1, 1)); err != nil {
					b.Fatal(err)
				}
			}
			probe := task.Chain(task.ID(active+1), 0, 100, 0.1, 0.1, 0.1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.WouldAdmit(probe)
			}
		})
	}
}

// BenchmarkAdmissionDecisionStages shows the admission test is linear in
// the number of stages (the N of O(N)).
func BenchmarkAdmissionDecisionStages(b *testing.B) {
	for _, n := range []int{1, 4, 16, 64} {
		b.Run(benchName("stages", n), func(b *testing.B) {
			sim := des.New()
			c := core.NewController(sim, core.NewRegion(n), nil)
			demands := make([]float64, n)
			for j := range demands {
				demands[j] = 0.01
			}
			probe := task.Chain(1, 0, 100, demands...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.WouldAdmit(probe)
			}
		})
	}
}

// BenchmarkRegionEvaluation measures the closed-form region math.
func BenchmarkRegionEvaluation(b *testing.B) {
	r := core.NewRegion(8)
	utils := []float64{0.1, 0.05, 0.12, 0.08, 0.02, 0.11, 0.06, 0.04}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !r.Contains(utils) {
			b.Fatal("point should be inside")
		}
	}
}

// BenchmarkGraphAdmission measures one Theorem 2 admission decision on
// the Figure 3 graph.
func BenchmarkGraphAdmission(b *testing.B) {
	sim := des.New()
	c := core.NewGraphController(sim, 4, 1, nil)
	g := task.NewGraph()
	n1 := g.AddNode(0, task.NewSubtask(0.1))
	n2 := g.AddNode(1, task.NewSubtask(0.1))
	n3 := g.AddNode(2, task.NewSubtask(0.1))
	n4 := g.AddNode(3, task.NewSubtask(0.1))
	g.AddEdge(n1, n2)
	g.AddEdge(n1, n3)
	g.AddEdge(n2, n4)
	g.AddEdge(n3, n4)
	probe := &task.Task{ID: 1, Deadline: 100, Graph: g}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.WouldAdmit(probe)
	}
}

// BenchmarkSimulatorThroughput measures raw pipeline-simulation speed in
// simulated tasks per benchmark iteration (fixed workload).
func BenchmarkSimulatorThroughput(b *testing.B) {
	spec := workload.PipelineSpec{Stages: 3, Load: 1.0, MeanDemand: 1, Resolution: 50}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim := des.New()
		p := feasregion.NewPipeline(sim, feasregion.PipelineOptions{Stages: 3})
		src := workload.NewSource(sim, spec, int64(i+1), 500, func(tk *task.Task) { p.Offer(tk) })
		sim.At(0, func() { p.BeginMeasurement() })
		src.Start()
		sim.Run()
	}
}

func benchName(prefix string, n int) string {
	switch {
	case n >= 1_000_000 && n%1_000_000 == 0:
		return prefix + "-" + strconv.Itoa(n/1_000_000) + "M"
	case n >= 1_000 && n%1_000 == 0:
		return prefix + "-" + strconv.Itoa(n/1_000) + "k"
	default:
		return prefix + "-" + strconv.Itoa(n)
	}
}

// BenchmarkLedgerChurn measures synthetic-utilization ledger operations
// (one add + one remove), the per-task bookkeeping cost of admission.
func BenchmarkLedgerChurn(b *testing.B) {
	l := core.NewLedger(0.1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := task.ID(i)
		l.Add(id, 0.001)
		l.Remove(id)
	}
}

// BenchmarkOnlineControllerParallel measures the wall-clock controller
// under concurrent admission from all cores.
func BenchmarkOnlineControllerParallel(b *testing.B) {
	c := online.New(core.NewRegion(3), nil, nil)
	var ids atomic.Uint64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			id := ids.Add(1)
			if c.TryAdmit(online.Request{
				ID:       id,
				Deadline: 10 * time.Millisecond,
				Demands:  []time.Duration{time.Microsecond, time.Microsecond, time.Microsecond},
			}) {
				c.Release(id)
			}
		}
	})
}

// BenchmarkStageScheduler measures raw submit->complete throughput of
// the preemptive stage scheduler.
func BenchmarkStageScheduler(b *testing.B) {
	sim := des.New()
	st := sched.New(sim, "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Submit(task.ID(i), float64(i%7), task.NewSubtask(0.001), nil)
		sim.Run()
	}
}

// BenchmarkHolisticRTA measures the offline comparator on a 20-task,
// 3-stage set — the cost the paper's O(N) online test avoids.
func BenchmarkHolisticRTA(b *testing.B) {
	g := dist.NewRNG(1)
	set := make([]analysis.SporadicTask, 20)
	for i := range set {
		period := 10 + g.Float64()*190
		set[i] = analysis.SporadicTask{
			Name: "t", Period: period, Deadline: period, Priority: period,
			Demands: []float64{period * 0.01, period * 0.01, period * 0.01},
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.HolisticRTA(3, set); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDESEventThroughput measures the raw event-calendar rate.
func BenchmarkDESEventThroughput(b *testing.B) {
	sim := des.New()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			sim.After(1, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	sim.After(1, tick)
	sim.Run()
}

// BenchmarkWaitQueueAdmission measures one hold-queue submission cycle
// (the §5 admission path with the 200 ms hold).
func BenchmarkWaitQueueAdmission(b *testing.B) {
	sim := des.New()
	c := core.NewController(sim, core.NewRegion(2), nil)
	w := core.NewWaitQueue(sim, c, 0.2, func(*task.Task) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := task.ID(i)
		w.Submit(task.Chain(id, sim.Now(), 1e9, 0.001, 0.001))
		c.Evict(id) // keep the ledger from saturating
	}
}

// BenchmarkSheddingDecision measures an admission that must plan and
// execute shedding of lower-importance work.
func BenchmarkSheddingDecision(b *testing.B) {
	sim := des.New()
	p := feasregion.NewPipeline(sim, feasregion.PipelineOptions{Stages: 1, EnableShedding: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		low := task.Chain(task.ID(2*i), sim.Now(), 1e9, 4e8) // fills ~0.4
		low.Importance = 1
		p.Offer(low)
		hi := task.Chain(task.ID(2*i+1), sim.Now(), 1e9, 4e8)
		hi.Importance = 9
		if !p.Offer(hi) { // must shed `low`
			b.Fatal("shedding admission failed")
		}
		p.Controller().Evict(hi.ID)
		sim.Run() // drain executions
	}
}
