package feasregion_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"feasregion/internal/cluster"
	"feasregion/internal/core"
	"feasregion/internal/online"
)

// Cluster routing hot-path benchmarks: one full Route — policy pick
// over the seqlock-published headroom snapshots, admission on the
// chosen replica, rollback to the runner-up on refusal — followed by
// the release, so the fleet's occupancy stays in steady state and
// every iteration measures the same work. The acceptance floor is
// 0 allocs/op for every policy at every fan-out.
//
// BenchmarkClusterRoute/<policy>-<g> splits b.N over exactly g
// goroutines on an 8-replica fleet; `make bench-cluster` emits the set
// as BENCH_cluster.json.

// benchFleet builds an 8-replica fleet with a frozen clock so no
// iteration pays (or dodges) expiry-purge work.
func benchFleet(pol cluster.Policy) *cluster.Cluster {
	t0 := time.Now()
	return cluster.New(cluster.Options{
		Region: core.NewRegion(3),
		Online: online.Config{Clock: func() time.Time { return t0 }},
		Policy: pol,
		Seed:   42,
		Scaler: cluster.AutoscalerConfig{Min: 8, Max: 8},
	})
}

func BenchmarkClusterRoute(b *testing.B) {
	for _, pol := range cluster.Policies {
		for _, g := range []int{1, 16, 64} {
			b.Run(fmt.Sprintf("%s-%d", pol, g), func(b *testing.B) {
				benchRouteN(b, pol, g)
			})
		}
	}
}

// benchRouteN splits b.N over exactly g goroutines (RunParallel's
// worker count floats with GOMAXPROCS, which would blur the fan-out
// axis). Each worker routes, then releases on the replica that
// admitted, keeping the fleet in steady state.
func benchRouteN(b *testing.B, pol cluster.Policy, g int) {
	c := benchFleet(pol)
	var nextID atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	done := make(chan struct{})
	per := b.N / g
	extra := b.N % g
	for w := 0; w < g; w++ {
		n := per
		if w < extra {
			n++
		}
		go func(n int) {
			demands := []time.Duration{time.Millisecond, time.Millisecond, time.Millisecond}
			for i := 0; i < n; i++ {
				req := online.Request{
					ID:       nextID.Add(1),
					Deadline: time.Second,
					Demands:  demands,
				}
				rep, ok := c.Route(req)
				if ok {
					rep.Release(req.ID)
				}
			}
			done <- struct{}{}
		}(n)
	}
	for w := 0; w < g; w++ {
		<-done
	}
}
