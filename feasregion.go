package feasregion

import (
	"io"

	"feasregion/internal/adapt"
	"feasregion/internal/cluster"
	"feasregion/internal/core"
	"feasregion/internal/degrade"
	"feasregion/internal/curve"
	"feasregion/internal/des"
	"feasregion/internal/dist"
	"feasregion/internal/metrics"
	"feasregion/internal/obs"
	"feasregion/internal/online"
	"feasregion/internal/pipeline"
	"feasregion/internal/priority"
	"feasregion/internal/task"
	"feasregion/internal/trace"
	"feasregion/internal/workload"
)

// ---- Region mathematics (paper §3) ----

// UniprocessorBound is the single-resource aperiodic schedulable
// utilization bound 1/(1+√½) = 2−√2 ≈ 0.586.
var UniprocessorBound = core.UniprocessorBound

// StageDelayFactor is f(U) = U(1−U/2)/(1−U) from the stage delay theorem.
func StageDelayFactor(u float64) float64 { return core.StageDelayFactor(u) }

// InverseStageDelayFactor inverts f: the utilization whose delay factor
// is y.
func InverseStageDelayFactor(y float64) float64 { return core.InverseStageDelayFactor(y) }

// Region is the multi-dimensional feasible region Σ f(U_j) ≤ α(1−Σβ_j).
type Region = core.Region

// NewRegion returns the deadline-monotonic independent-task region for
// the given number of stages (Eq. 13).
func NewRegion(stages int) Region { return core.NewRegion(stages) }

// TaskParams is a (priority, deadline) pair for urgency-inversion
// analysis.
type TaskParams = core.TaskParams

// Alpha computes a priority assignment's urgency-inversion parameter
// α = min D_lo/D_hi over priority-ordered pairs (paper §2).
func Alpha(params []TaskParams) float64 { return core.Alpha(params) }

// CriticalSection describes one critical section for blocking analysis.
type CriticalSection = core.CriticalSection

// BlockingTaskInfo is a task's static view for blocking analysis.
type BlockingTaskInfo = core.BlockingTaskInfo

// Betas computes the per-stage normalized blocking terms β_j of Eq. 15
// under the priority ceiling protocol.
func Betas(stages int, tasks []BlockingTaskInfo) []float64 { return core.Betas(stages, tasks) }

// GraphValue evaluates Theorem 2's left-hand side for a DAG task graph.
func GraphValue(g *Graph, utils, betas []float64) float64 { return core.GraphValue(g, utils, betas) }

// GraphFeasible reports whether a DAG task's region condition holds.
func GraphFeasible(g *Graph, utils, betas []float64, alpha float64) bool {
	return core.GraphFeasible(g, utils, betas, alpha)
}

// ---- Task model ----

// TaskID identifies a task instance.
type TaskID = task.ID

// NoLock marks a segment outside any critical section.
const NoLock = task.NoLock

// Task is one aperiodic arrival with per-stage demands and an end-to-end
// deadline.
type Task = task.Task

// Subtask is a task's work on one stage.
type Subtask = task.Subtask

// Segment is a contiguous piece of a subtask, optionally inside a
// critical section.
type Segment = task.Segment

// Graph is a DAG of subtasks over resources (paper §3.3).
type Graph = task.Graph

// NewGraph returns an empty task-graph builder.
func NewGraph() *Graph { return task.NewGraph() }

// Chain builds a pipeline task from per-stage demands.
func Chain(id TaskID, arrival, deadline float64, demands ...float64) *Task {
	return task.Chain(id, arrival, deadline, demands...)
}

// Policy assigns scheduling priorities (lower = more urgent).
type Policy = task.Policy

// DeadlineMonotonic is the optimal fixed-priority policy (α = 1).
type DeadlineMonotonic = task.DeadlineMonotonic

// EDF schedules by absolute deadline (not fixed-priority; simulator
// comparison only).
type EDF = task.EDF

// RandomPriority assigns uniformly random priorities (α = Dleast/Dmost).
type RandomPriority = task.Random

// SemanticImportance prioritizes by importance (generally α < 1).
type SemanticImportance = task.SemanticImportance

// EDFApprox freezes each task's EDF priority (absolute deadline) at
// arrival — fixed-priority, so the region applies with the α the
// concurrent population earns.
type EDFApprox = task.EDFApprox

// ---- Optimal priority assignment (THEORY.md §9) ----

// PriorityCandidate is one task as the OPA search sees it: identity,
// relative end-to-end deadline, and per-stage demands.
type PriorityCandidate = priority.Candidate

// PriorityTest is a pluggable per-task schedulability test driving the
// OPA search: set-dependent only and monotone under set shrinking.
type PriorityTest = priority.Test

// RegionExactTest is the Theorem 1 delay composition restricted to each
// task's equal-or-higher-priority interference set with a per-stage
// maximum deadline — the tightest sound test and the admission default.
type RegionExactTest = priority.RegionExact

// AlphaPenalizedTest is the scalar α form of Eq. 15 applied per task
// (one global maximum deadline) — the test the closed-form region
// implies, coarser than RegionExactTest.
type AlphaPenalizedTest = priority.AlphaPenalized

// ResponseTimeTest is the additive per-stage interference bound. It
// ranks priority orders beyond their deadlines but is NOT sound under
// aperiodic churn — offline comparison and tightness studies only.
type ResponseTimeTest = priority.ResponseTime

// PriorityAssignment is the result of an OPA search: a strict total
// order with per-task levels, its α, and a replayable Policy.
type PriorityAssignment = priority.Assignment

// PriorityInfeasibleError reports an OPA search that found no feasible
// order, with the level reached and the unassigned tasks.
type PriorityInfeasibleError = priority.InfeasibleError

// AssignPriorities runs the Audsley-style OPA search over the
// candidates: levels are filled lowest-first and any candidate that
// remains schedulable with all still-unassigned candidates above it
// takes the level (deterministic largest-deadline-first tie-break). For
// the monotone tests this is optimal for the tested class: it succeeds
// whenever any total order passes. test nil selects RegionExactTest.
func AssignPriorities(cands []PriorityCandidate, stages int, test PriorityTest) (*PriorityAssignment, error) {
	return priority.Assign(cands, stages, test)
}

// AssignTaskPriorities runs the OPA search over tasks and writes the
// searched levels into each Task.Priority.
func AssignTaskPriorities(tasks []*Task, stages int, test PriorityTest) (*PriorityAssignment, error) {
	return priority.AssignTasks(tasks, stages, test)
}

// TaskCandidates converts tasks into OPA search candidates.
func TaskCandidates(tasks []*Task, stages int) []PriorityCandidate {
	return priority.Candidates(tasks, stages)
}

// NewExplicitOrderPolicy replays a recorded priority order (e.g. an
// offline OPA result) as a task.Policy; tasks outside the order fall
// back to the given policy (nil: deadline-monotonic).
func NewExplicitOrderPolicy(ids []TaskID, prios []float64, fallback Policy) Policy {
	return priority.NewExplicitOrder(ids, prios, fallback)
}

// PriorityAdmitter is the online OPA admission controller: it keeps
// per-task interference sets, places each arrival at its deadline slot
// with a strict frozen priority, and admits iff the per-task test holds
// for the newcomer and everything below it. It implements Admitter for
// PipelineOptions.Admitter (or use PriorityOPA declaratively).
type PriorityAdmitter = priority.Admitter

// PriorityAdmitterStats is a PriorityAdmitter decision snapshot.
type PriorityAdmitterStats = priority.Stats

// PriorityMode selects the PriorityAdmitter's placement rule.
type PriorityMode = priority.Mode

// PriorityAdmitter placement modes.
const (
	// PriorityModeOPA places arrivals at their deadline slot with
	// strict levels (the provably optimal slot for the monotone tests).
	PriorityModeOPA = priority.ModeOPA
	// PriorityModeDM places arrivals by relative deadline, equal
	// deadlines at equal priority.
	PriorityModeDM = priority.ModeDM
	// PriorityModeRandom draws a uniform priority per arrival.
	PriorityModeRandom = priority.ModeRandom
)

// NewPriorityAdmitter builds a per-task priority-aware admitter for an
// N-stage pipeline. test nil selects RegionExactTest; rng seeds
// PriorityModeRandom draws (nil: fixed internal seed).
func NewPriorityAdmitter(stages int, mode PriorityMode, test PriorityTest, rng *RNG) *PriorityAdmitter {
	return priority.NewAdmitter(stages, mode, test, rng)
}

// DMCompatible reports whether a priority order never inverts urgency
// (α ≥ 1), i.e. Eq. 15 applies un-penalized.
func DMCompatible(params []TaskParams) bool { return core.DMCompatible(params) }

// RegionForOrder builds the feasible region a given priority order
// earns: the DM region shrunk by the order's α (Eq. 12).
func RegionForOrder(stages int, params []TaskParams, betas []float64) Region {
	return core.RegionForOrder(stages, params, betas)
}

// ---- Admission control ----

// Estimator supplies admission-time demand estimates.
type Estimator = core.Estimator

// MeanDemand returns the approximate-admission estimator of §4.4.
func MeanDemand(means []float64) Estimator { return core.MeanDemand(means) }

// Controller is the O(N) feasible-region admission controller for
// pipelines.
type Controller = core.Controller

// NewController builds a controller over the region, with optional
// per-stage reserved utilization for certified critical tasks.
func NewController(sim *Simulator, region Region, reserved []float64) *Controller {
	return core.NewController(sim, region, reserved)
}

// GraphController is the Theorem 2 admission controller for DAG tasks.
type GraphController = core.GraphController

// NewGraphController builds a DAG admission controller.
func NewGraphController(sim *Simulator, resources int, alpha float64, betas []float64) *GraphController {
	return core.NewGraphController(sim, resources, alpha, betas)
}

// WaitQueue holds non-admissible arrivals for a bounded time (§5).
type WaitQueue = core.WaitQueue

// NewWaitQueue wraps a controller with hold-and-retry admission.
func NewWaitQueue(sim *Simulator, c *Controller, maxWait float64, admit func(*Task)) *WaitQueue {
	return core.NewWaitQueue(sim, c, maxWait, admit)
}

// NewGraphWaitQueue wraps a Theorem 2 controller with hold-and-retry
// admission for DAG tasks.
func NewGraphWaitQueue(sim *Simulator, c *GraphController, maxWait float64, admit func(*Task)) *WaitQueue {
	return core.NewGraphWaitQueue(sim, c, maxWait, admit)
}

// ---- Simulation ----

// Simulator is the deterministic discrete-event engine.
type Simulator = des.Simulator

// NewSimulator returns an empty simulator at time zero.
func NewSimulator() *Simulator { return des.New() }

// Pipeline simulates an N-stage resource pipeline with admission control.
type Pipeline = pipeline.Pipeline

// PipelineOptions configures NewPipeline.
type PipelineOptions = pipeline.Options

// PipelineMetrics is a measurement-window snapshot.
type PipelineMetrics = pipeline.Metrics

// Admitter is the pluggable admission-policy interface a Pipeline drives.
type Admitter = pipeline.Admitter

// PipelinePriorityPolicy declaratively selects a priority-assignment
// policy in PipelineOptions (DM, EDF-approx, online OPA, explicit
// order); the zero value defers to PipelineOptions.Policy.
type PipelinePriorityPolicy = pipeline.PriorityPolicy

// PipelinePriorityPolicy values for PipelineOptions.PriorityPolicy.
const (
	// PriorityDefault defers to PipelineOptions.Policy.
	PriorityDefault = pipeline.PriorityDefault
	// PriorityDM selects deadline-monotonic assignment (α = 1).
	PriorityDM = pipeline.PriorityDM
	// PriorityEDFApprox freezes EDF priorities at arrival.
	PriorityEDFApprox = pipeline.PriorityEDFApprox
	// PriorityOPA replaces the admission controller with the online
	// Audsley search (PriorityAdmitter, RegionExactTest).
	PriorityOPA = pipeline.PriorityOPA
	// PriorityExplicit replays PipelineOptions.ExplicitOrder.
	PriorityExplicit = pipeline.PriorityExplicit
)

// NewPipeline builds a pipeline simulator.
func NewPipeline(sim *Simulator, opts PipelineOptions) *Pipeline { return pipeline.New(sim, opts) }

// GraphSystem executes DAG tasks over independent resources.
type GraphSystem = pipeline.GraphSystem

// GraphSystemOptions configures NewGraphSystem.
type GraphSystemOptions = pipeline.GraphOptions

// NewGraphSystem builds a DAG execution system.
func NewGraphSystem(sim *Simulator, opts GraphSystemOptions) *GraphSystem {
	return pipeline.NewGraphSystem(sim, opts)
}

// MultiServerPipeline extends the model to stages with multiple CPUs
// via partitioned dispatch (Theorem 2 per virtual pipeline).
type MultiServerPipeline = pipeline.MultiServerPipeline

// MultiServerOptions configures NewMultiServerPipeline.
type MultiServerOptions = pipeline.MultiServerOptions

// NewMultiServerPipeline builds a partitioned multiprocessor pipeline.
func NewMultiServerPipeline(sim *Simulator, opts MultiServerOptions) *MultiServerPipeline {
	return pipeline.NewMultiServerPipeline(sim, opts)
}

// ---- Online (wall-clock) admission control ----

// OnlineController is the thread-safe wall-clock admission controller
// for real services: contributions expire lazily against time.Now (or an
// injected clock) and all methods are safe for concurrent use.
type OnlineController = online.Controller

// OnlineRequest describes one admission request to an OnlineController.
type OnlineRequest = online.Request

// OnlineClock abstracts time.Now for testing online controllers.
type OnlineClock = online.Clock

// NewOnlineController builds a wall-clock controller for the region with
// optional per-stage reserved floors; clock may be nil (time.Now).
func NewOnlineController(region Region, reserved []float64, clock OnlineClock) *OnlineController {
	return online.New(region, reserved, clock)
}

// OnlineConfig is the full configuration for an OnlineController,
// including the shard count for multi-core admission: Shards > 1
// partitions the region bound across cache-line-isolated shards so
// concurrent admits stop contending on one mutex, while staying
// work-conserving (the sharded controller admits exactly the task sets
// the unsharded one admits).
type OnlineConfig = online.Config

// NewOnlineControllerWithConfig builds a wall-clock controller from the
// full configuration; the zero Config matches NewOnlineController with
// nil reserved floors and the system clock.
func NewOnlineControllerWithConfig(region Region, cfg OnlineConfig) *OnlineController {
	return online.NewWithConfig(region, cfg)
}

// ---- Cluster (replicas, headroom routing, autoscaling) ----

// ClusterReplica wraps one OnlineController as a routable cluster
// member: it publishes a lock-free headroom snapshot (the region bound
// minus the current region value) after every admission event, and
// carries the Active → Draining → Stopped lifecycle the autoscaler
// drives.
type ClusterReplica = cluster.Replica

// NewClusterReplica wraps an OnlineController as a replica with the
// given identity.
func NewClusterReplica(id int, ctrl *OnlineController) *ClusterReplica {
	return cluster.NewReplica(id, ctrl)
}

// ReplicaState is a replica's lifecycle state.
type ReplicaState = cluster.State

// Replica lifecycle states.
const (
	// ReplicaActive: routable, accepting admissions.
	ReplicaActive = cluster.Active
	// ReplicaDraining: hidden from the router, finishing admitted work.
	ReplicaDraining = cluster.Draining
	// ReplicaStopped: removed from the fleet.
	ReplicaStopped = cluster.Stopped
)

// RoutingPolicy selects how the cluster router places admissions over
// the replicas' published headroom snapshots.
type RoutingPolicy = cluster.Policy

// Routing policies.
const (
	// RouteRoundRobin rotates blindly over the active replicas.
	RouteRoundRobin = cluster.RoundRobin
	// RouteHeadroomGreedy scans every snapshot and picks the roomiest.
	RouteHeadroomGreedy = cluster.HeadroomGreedy
	// RoutePowerOfTwo probes two random replicas and keeps the roomier —
	// near-greedy balance at O(1) cost, with the runner-up as rollback.
	RoutePowerOfTwo = cluster.PowerOfTwo
)

// ClusterRouter is the lock-free routing hot path; RouterStats its
// lifetime counters.
type ClusterRouter = cluster.Router

// RouterStats counts placements, rollbacks, and rejections.
type RouterStats = cluster.RouterStats

// Autoscaler watches aggregate region headroom and router reject rate
// and grows or drains the fleet with hysteresis: scale-up is fast (a
// short streak of low headroom or visible rejects), scale-down is slow
// and routes through a drain state so admitted work finishes first.
type Autoscaler = cluster.Autoscaler

// AutoscalerConfig tunes the autoscaler's thresholds; the zero value
// selects the defaults.
type AutoscalerConfig = cluster.AutoscalerConfig

// AutoscalerTransition is one logged scaling action.
type AutoscalerTransition = cluster.Transition

// ScalingAction enumerates what an AutoscalerTransition did.
type ScalingAction = cluster.Action

// Cluster is the control plane tying replicas, router, and autoscaler
// together.
type Cluster = cluster.Cluster

// ClusterOptions configures NewCluster.
type ClusterOptions = cluster.Options

// NewCluster builds a cluster control plane; see cluster.Options for
// the replica factory and scaler wiring.
func NewCluster(opts ClusterOptions) *Cluster { return cluster.New(opts) }

// ClusterPipeline drives a fleet of simulated stage pipelines — one per
// replica — behind the cluster router and autoscaler, for experiments
// and capacity planning on the deterministic simulator.
type ClusterPipeline = pipeline.ClusterPipeline

// ClusterPipelineOptions configures NewClusterPipeline.
type ClusterPipelineOptions = pipeline.ClusterOptions

// ClusterPipelineMetrics is the fleet-level measurement snapshot.
type ClusterPipelineMetrics = pipeline.ClusterMetrics

// NewClusterPipeline builds the simulated fleet on the simulator.
func NewClusterPipeline(sim *Simulator, opts ClusterPipelineOptions) *ClusterPipeline {
	return pipeline.NewCluster(sim, opts)
}

// ---- Observability (metrics & stage-health feedback) ----

// MetricsRegistry is the dependency-free instrument registry: counters,
// gauges, histograms, and EWMAs with a zero-alloc hot path, exported in
// Prometheus text format (Handler/WritePrometheus) and via expvar. A nil
// registry disables metrics at no cost.
type MetricsRegistry = metrics.Registry

// MetricLabel is one name="value" pair attached to a metric series.
type MetricLabel = metrics.Label

// NewMetricsRegistry returns an empty, enabled registry. Pass it via
// PipelineOptions.Metrics, Controller.SetMetrics, or
// OnlineController.RegisterMetrics.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// ExponentialBuckets returns count histogram bucket bounds starting at
// start and multiplying by factor.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	return metrics.ExponentialBuckets(start, factor, count)
}

// StageHealthMonitor closes the loop from observed per-stage service
// times back into admission: an EWMA of actual/declared demand drives
// the controller's per-stage scale when a stage degrades.
type StageHealthMonitor = obs.Monitor

// StageHealthConfig parameterizes a StageHealthMonitor.
type StageHealthConfig = obs.Config

// StageScaler is the actuator a StageHealthMonitor drives; both
// Controller and OnlineController implement it.
type StageScaler = obs.Scaler

// NewStageHealthMonitor builds a monitor driving scaler (which may be
// nil and wired later with SetScaler).
func NewStageHealthMonitor(cfg StageHealthConfig, scaler StageScaler) *StageHealthMonitor {
	return obs.NewMonitor(cfg, scaler)
}

// ---- Closed-loop adaptation (adaptive α, β, demand) ----

// AdaptiveLoop periodically re-estimates the region inputs from live
// telemetry: per-stage β_j from sojourn-time tails, the effective
// urgency-inversion α from observed-vs-predicted stage delays, and
// per-class demand inflation from overrun-guard detections. Updates
// flow into a RegionSink (Controller or OnlineController) and only ever
// shrink the configured base region, so Theorem 1's guarantee is
// preserved. See DESIGN.md §8 and THEORY.md §7.
type AdaptiveLoop = adapt.Loop

// AdaptiveConfig configures an AdaptiveLoop; its Beta, Alpha, and Demand
// sections enable the three estimators independently.
type AdaptiveConfig = adapt.Config

// AdaptiveBetaConfig tunes the blocking-share (β) estimator.
type AdaptiveBetaConfig = adapt.BetaConfig

// AdaptiveAlphaConfig tunes the urgency-inversion (α) estimator.
type AdaptiveAlphaConfig = adapt.AlphaConfig

// AdaptiveDemandConfig tunes the per-class demand inflation estimator.
type AdaptiveDemandConfig = adapt.DemandConfig

// AdaptiveSources are the telemetry callbacks an AdaptiveLoop reads;
// PipelineOptions.Adapt wires them from the pipeline's own metrics
// automatically.
type AdaptiveSources = adapt.Sources

// RegionSink receives region-input updates from an AdaptiveLoop; both
// Controller and OnlineController implement it.
type RegionSink = adapt.RegionSink

// AdaptiveLoopStats is a snapshot of an AdaptiveLoop's state.
type AdaptiveLoopStats = adapt.LoopStats

// NewAdaptiveLoop builds an estimation loop over the base region,
// pushing updates into sink and reading telemetry from src. Drive it
// with Tick (manual), ScheduleSim (simulation), or Start (wall clock).
func NewAdaptiveLoop(cfg AdaptiveConfig, base Region, sink RegionSink, src AdaptiveSources) *AdaptiveLoop {
	return adapt.NewLoop(cfg, base, sink, src)
}

// ---- Graceful degradation (imprecise computation + overload governor) ----

// QualityLevels is the height of the discrete quality ladder: level 0
// executes mandatory demand only, level QualityLevels the full demand.
const QualityLevels = task.QualityLevels

// MandatoryUtility is the utility fraction a task delivers when it
// completes at mandatory-only quality; the optional part delivers the
// rest linearly across the ladder.
const MandatoryUtility = task.MandatoryUtility

// OverloadGovernor is the hysteresis state machine (Normal → Degraded →
// Shedding) that converts region headroom and overrun feedback into a
// quality cap for admissions and in-flight trims. Attach one to a
// Pipeline via PipelineOptions.Governor, or build one directly with
// NewOverloadGovernor for an OnlineController. See DESIGN.md §9.
type OverloadGovernor = degrade.Governor

// GovernorConfig tunes the governor's hysteresis thresholds; the zero
// value selects the defaults.
type GovernorConfig = degrade.Config

// GovernorInputs are the governor's sensor closures (region headroom,
// optional overrun counter).
type GovernorInputs = degrade.Inputs

// GovernorState is the governor's operating mode.
type GovernorState = degrade.State

// Governor operating modes, in order of increasing distress.
const (
	// GovernorNormal: admissions run at full quality.
	GovernorNormal = degrade.Normal
	// GovernorDegraded: the quality cap is below full; no evictions.
	GovernorDegraded = degrade.Degraded
	// GovernorShedding: the cap is mandatory-only and eviction is
	// permitted.
	GovernorShedding = degrade.Shedding
)

// GovernorStats is a snapshot of the governor's counters.
type GovernorStats = degrade.Stats

// NewOverloadGovernor builds a governor over the given sensors. Drive
// it with Tick (manual), ScheduleSim (simulation), or Start (wall
// clock).
func NewOverloadGovernor(cfg GovernorConfig, in GovernorInputs) *OverloadGovernor {
	return degrade.New(cfg, in)
}

// OrderVictims sorts tasks in place into the canonical victim order
// shared by eviction and degradation: least important first, then
// largest region contribution, then highest ID.
func OrderVictims(victims []*Task) { task.OrderVictims(victims) }

// ---- Synthetic-utilization curves (Figure 1) ----

// CurveRecorder records synthetic-utilization step curves from a
// Controller (wire Observe to Controller.OnUtilizationChange); it
// computes areas (the stage delay theorem's area property) and renders
// CSV or ASCII plots.
type CurveRecorder = curve.Recorder

// CurvePoint is one step of a recorded curve.
type CurvePoint = curve.Point

// NewCurveRecorder returns a recorder for the given number of stages
// with optional initial (reserved) levels.
func NewCurveRecorder(stages int, initial []float64) *CurveRecorder {
	return curve.NewRecorder(stages, initial)
}

// ---- Tracing ----

// TraceRecorder records admission and scheduling events for offline
// inspection; pass it via PipelineOptions.Trace.
type TraceRecorder = trace.Recorder

// TraceRecord is one traced event.
type TraceRecord = trace.Record

// TraceSpan is one contiguous execution interval reconstructed from a
// trace.
type TraceSpan = trace.Span

// NewTraceRecorder returns a recorder keeping at most max records
// (max ≤ 0: unbounded).
func NewTraceRecorder(max int) *TraceRecorder { return trace.New(max) }

// ---- Workload generation ----

// RNG is a deterministic random stream.
type RNG = dist.RNG

// NewRNG returns a stream seeded with seed.
func NewRNG(seed int64) *RNG { return dist.NewRNG(seed) }

// WorkloadSpec describes the paper's §4 synthetic workload.
type WorkloadSpec = workload.PipelineSpec

// Source is an open-loop Poisson arrival generator.
type Source = workload.Source

// NewSource builds a generator feeding offer until horizon.
func NewSource(sim *Simulator, spec WorkloadSpec, seed int64, horizon float64, offer func(*Task)) *Source {
	return workload.NewSource(sim, spec, seed, horizon, offer)
}

// PeriodicStream is a periodic (optionally jittered) task stream.
type PeriodicStream = workload.PeriodicStream

// ClassSpec describes one request class in a mixed workload.
type ClassSpec = workload.ClassSpec

// MixedSource superposes per-class Poisson streams.
type MixedSource = workload.MixedSource

// NewMixedSource schedules all classes' arrivals into offer until
// horizon, with task IDs starting at firstID.
func NewMixedSource(sim *Simulator, stages int, classes []ClassSpec, seed int64, firstID TaskID, horizon float64, offer func(*Task)) *MixedSource {
	return workload.NewMixedSource(sim, stages, classes, seed, firstID, horizon, offer)
}

// Distribution is a probability distribution for workload parameters.
type Distribution = dist.Distribution

// NewExponential returns an exponential distribution with the given mean.
func NewExponential(mean float64) Distribution { return dist.NewExponential(mean) }

// NewUniform returns a uniform distribution on [low, high].
func NewUniform(low, high float64) Distribution { return dist.NewUniform(low, high) }

// NewDeterministic returns a point distribution.
func NewDeterministic(v float64) Distribution { return dist.NewDeterministic(v) }

// NewBoundedPareto returns a bounded Pareto distribution (heavy tails).
func NewBoundedPareto(alpha, low, high float64) Distribution { return dist.NewPareto(alpha, low, high) }

// TSCE is the Table 1 Total Ship Computing Environment scenario.
type TSCE = workload.TSCE

// NewTSCE returns the paper's Table 1 parameters.
func NewTSCE() TSCE { return workload.NewTSCE() }

// ---- Trace recording and replay ----

// Replay is a recorded workload of explicit arrivals.
type Replay = workload.Replay

// ParseReplay reads a CSV workload trace (arrival,deadline,demands...).
func ParseReplay(r io.Reader) (*Replay, error) { return workload.ParseReplay(r) }

// TraceWriter streams workload records into the binary trace format.
type TraceWriter = workload.TraceWriter

// NewTraceWriter writes a binary trace header and returns the record
// writer; classes may be nil for an unclassed trace.
func NewTraceWriter(w io.Writer, stages int, classes []string) (*TraceWriter, error) {
	return workload.NewTraceWriter(w, stages, classes)
}

// TraceReader streams records from a binary trace with O(1) memory.
type TraceReader = workload.TraceReader

// WorkloadTraceRecord is one decoded binary workload-trace record
// (named apart from TraceRecord, the execution-trace event).
type WorkloadTraceRecord = workload.TraceRecord

// OpenTrace validates a binary trace header and positions the reader at
// the first record.
func OpenTrace(r io.Reader) (*TraceReader, error) { return workload.OpenTrace(r) }

// ImportTraceCSV converts a CSV trace to the binary format, streaming
// row by row; rows must already be ordered by arrival.
func ImportTraceCSV(r io.Reader, w io.Writer) (uint64, error) { return workload.ImportCSV(r, w) }

// ReplayOptions are the stress knobs of a trace replay (time
// compression, rate multiplication, limits, task reuse).
type ReplayOptions = workload.ReplayOptions

// Replayer streams a binary trace through a simulator with one pending
// arrival event at a time.
type Replayer = workload.Replayer

// NewReplayer wraps an open trace reader for streaming replay into
// offer.
func NewReplayer(sim *Simulator, tr *TraceReader, opts ReplayOptions, offer func(*Task)) (*Replayer, error) {
	return workload.NewReplayer(sim, tr, opts, offer)
}

// Scenario is a declarative workload specification: a diurnal rate
// curve, user-class cohorts, and flash crowds, compiled into a live
// generator or recorded straight into a binary trace.
type Scenario = workload.Scenario

// RatePoint is one breakpoint of a scenario's piecewise-linear rate
// curve.
type RatePoint = workload.RatePoint

// Cohort is one user class inside a scenario.
type Cohort = workload.Cohort

// FlashCrowd is a temporary rate surge layered on a scenario's curve.
type FlashCrowd = workload.FlashCrowd

// ScenarioSource generates a scenario's arrivals inside a simulator.
type ScenarioSource = workload.ScenarioSource
