// Command pipesim runs one configurable pipeline simulation and reports
// the resulting utilization, acceptance, miss-ratio, and response-time
// statistics. It is the interactive companion to cmd/experiments.
//
// Example:
//
//	pipesim -stages 3 -load 1.2 -resolution 100 -horizon 5000
//	pipesim -stages 2 -admission none -load 1.5        # baseline, misses
//	pipesim -stages 2 -admission approx -resolution 10 # §4.4
//	pipesim -stages 2 -imbalance 4                     # Fig. 6 regime
package main

import (
	"flag"
	"fmt"
	"os"

	"feasregion/internal/baseline"
	"feasregion/internal/core"
	"feasregion/internal/curve"
	"feasregion/internal/des"
	"feasregion/internal/dist"
	"feasregion/internal/pipeline"
	"feasregion/internal/task"
	"feasregion/internal/trace"
	"feasregion/internal/workload"
)

func main() {
	var (
		stages     = flag.Int("stages", 2, "pipeline length N")
		load       = flag.Float64("load", 1.0, "offered load as a fraction of bottleneck stage capacity")
		resolution = flag.Float64("resolution", 100, "mean deadline / mean total computation")
		imbalance  = flag.Float64("imbalance", 1, "two-stage mean-demand ratio (requires -stages 2 when != 1)")
		policyName = flag.String("policy", "dm", "scheduling policy: dm, edf, random, fifo")
		admission  = flag.String("admission", "exact", "admission control: exact, approx, split, none")
		alpha      = flag.Float64("alpha", 0, "urgency-inversion parameter override (0 = policy default)")
		maxWait    = flag.Float64("maxwait", 0, "hold non-admissible arrivals up to this long")
		noReset    = flag.Bool("noreset", false, "disable the idle reset (ablation)")
		horizon    = flag.Float64("horizon", 4000, "simulated time units of arrivals")
		warmup     = flag.Float64("warmup", 400, "warmup before measurement starts")
		seed       = flag.Int64("seed", 1, "random seed")
		traceOut   = flag.String("trace", "", "write an event trace CSV to this file (implies a short horizon is wise)")
		replayPath = flag.String("replay", "", "replay a workload trace CSV (arrival,deadline,c1..cN) instead of generating one")
		recordPath = flag.String("record", "", "also save the generated workload as a replayable CSV")
		timeline   = flag.Bool("timeline", false, "print an ASCII execution timeline (use with small -horizon)")
		curvePlot  = flag.Bool("curve", false, "print the synthetic-utilization step curves (paper Fig. 1) per stage")
	)
	flag.Parse()

	var replay *workload.Replay
	if *replayPath != "" {
		f, err := os.Open(*replayPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipesim: %v\n", err)
			os.Exit(1)
		}
		rep, err := workload.ParseReplay(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipesim: %v\n", err)
			os.Exit(1)
		}
		replay = rep
		*stages = rep.Stages()
		if h := rep.Horizon(); h < *horizon {
			*horizon = h
		}
	}

	spec := workload.PipelineSpec{
		Stages:     *stages,
		Load:       *load,
		MeanDemand: 1,
		Resolution: *resolution,
	}
	if *imbalance != 1 {
		if *stages != 2 {
			fmt.Fprintln(os.Stderr, "pipesim: -imbalance requires -stages 2")
			os.Exit(2)
		}
		spec.StageScale = workload.ImbalanceScales(*imbalance)
	}

	var policy task.Policy
	defaultAlpha := 1.0
	switch *policyName {
	case "dm":
		policy = task.DeadlineMonotonic{}
	case "edf":
		policy = task.EDF{}
	case "random":
		policy = task.Random{}
		defaultAlpha = 1.0 / 3 // deadlines uniform in mean·[0.5, 1.5]
	case "fifo":
		policy = task.FIFO{}
	default:
		fmt.Fprintf(os.Stderr, "pipesim: unknown policy %q\n", *policyName)
		os.Exit(2)
	}
	if *alpha == 0 {
		*alpha = defaultAlpha
	}

	sim := des.New()
	opts := pipeline.Options{
		Stages:           *stages,
		Policy:           policy,
		MaxWait:          *maxWait,
		DisableIdleReset: *noReset,
		PriorityRNG:      dist.NewRNG(*seed + 7),
	}
	region := core.NewRegion(*stages).WithAlpha(*alpha)
	switch *admission {
	case "exact":
		opts.Region = &region
	case "approx":
		opts.Region = &region
		opts.Estimator = core.MeanDemand(spec.StageMeans())
	case "split":
		opts.Admitter = baseline.NewSplitDeadlineController(sim, *stages)
	case "none":
		opts.NoAdmission = true
	default:
		fmt.Fprintf(os.Stderr, "pipesim: unknown admission mode %q\n", *admission)
		os.Exit(2)
	}

	var rec *trace.Recorder
	if *traceOut != "" || *timeline {
		rec = trace.New(0)
		opts.Trace = rec
	}
	p := pipeline.New(sim, opts)
	var curves *curve.Recorder
	if *curvePlot {
		if p.Controller() == nil {
			fmt.Fprintln(os.Stderr, "pipesim: -curve requires the feasible-region controller (admission exact/approx)")
			os.Exit(2)
		}
		curves = curve.NewRecorder(*stages, nil)
		p.Controller().OnUtilizationChange(curves.Observe)
	}
	offer := func(tk *task.Task) { p.Offer(tk) }
	var recorded *workload.Replay
	if *recordPath != "" {
		recorded, offer = workload.RecordReplay(offer)
	}
	if replay != nil {
		replay.Schedule(sim, offer)
	} else {
		src := workload.NewSource(sim, spec, *seed, *horizon, offer)
		src.Start()
	}
	sim.At(*warmup, func() { p.BeginMeasurement() })
	var m pipeline.Metrics
	sim.At(*horizon, func() { m = p.Snapshot() })
	sim.Run()

	if recorded != nil {
		f, err := os.Create(*recordPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipesim: %v\n", err)
			os.Exit(1)
		}
		if err := recorded.WriteCSV(f); err != nil {
			fmt.Fprintf(os.Stderr, "pipesim: writing workload: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("workload: %d tasks recorded to %s\n", len(recorded.Tasks), *recordPath)
	}

	fmt.Printf("pipeline: %d stages, policy=%s, admission=%s, load=%.0f%%, resolution=%g\n",
		*stages, *policyName, *admission, *load*100, *resolution)
	fmt.Printf("arrival rate: %.4g/s over horizon %.4g (warmup %.4g), %d arrivals measured\n",
		spec.ArrivalRate(), *horizon, *warmup, m.Offered)
	fmt.Printf("accepted: %d/%d (%.1f%%)\n", m.EnteredService, m.Offered, m.AcceptRatio*100)
	fmt.Printf("completed: %d, missed: %d (miss ratio %.5f)\n", m.Completed, m.Missed, m.MissRatio)
	for j, u := range m.StageUtilization {
		fmt.Printf("stage %d real utilization: %.4f\n", j+1, u)
	}
	fmt.Printf("mean stage utilization: %.4f (bottleneck %.4f)\n", m.MeanUtilization, m.BottleneckUtilization)
	if m.ResponseTimes.Count() > 0 {
		fmt.Printf("response times: mean %.4g, p50 %.4g, p95 %.4g, p99 %.4g, max %.4g (n=%d)\n",
			m.ResponseTimes.Mean(), m.ResponseP50, m.ResponseP95, m.ResponseP99,
			m.ResponseTimes.Max(), m.ResponseTimes.Count())
	}
	if wq := p.WaitQueue(); wq != nil {
		ws := wq.Stats()
		fmt.Printf("wait queue: %d immediate, %d after wait, %d timed out\n",
			ws.AdmittedImmediately, ws.AdmittedAfterWait, ws.TimedOut)
	}
	if sim.Steps() == 0 {
		fmt.Fprintln(os.Stderr, "pipesim: no events executed")
		os.Exit(1)
	}
	if curves != nil {
		fmt.Println()
		for j := 0; j < *stages; j++ {
			if err := curves.Render(os.Stdout, j, *warmup, *horizon, 100, 6); err != nil {
				fmt.Fprintf(os.Stderr, "pipesim: rendering curve: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if rec != nil {
		if *timeline {
			fmt.Println()
			if err := rec.RenderTimeline(os.Stdout, 100, *warmup, *horizon); err != nil {
				fmt.Fprintf(os.Stderr, "pipesim: rendering timeline: %v\n", err)
				os.Exit(1)
			}
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pipesim: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			if err := rec.WriteCSV(f); err != nil {
				fmt.Fprintf(os.Stderr, "pipesim: writing trace: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("trace: %d events written to %s (%d dropped)\n", rec.Len(), *traceOut, rec.Dropped())
		}
	}
}
