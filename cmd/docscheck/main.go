// Docscheck enforces the repository's documentation invariants:
//
//  1. every Go package carries package-level documentation;
//  2. every exported identifier of the public API (the root feasregion
//     package) has a doc comment;
//  3. every relative link in the markdown files resolves to a file or
//     directory that exists;
//  4. every qualified identifier (`pkg.Ident`, and `pkg.Type.Member`
//     where resolvable) named in README.md, DESIGN.md, THEORY.md, and
//     EXPERIMENTS.md code spans exists in the named package — the
//     mechanical guard against documentation rot when APIs are renamed.
//
// It prints one line per violation and exits non-zero if any were
// found. Run via `make docs-check`; CI runs it on every push.
package main

import (
	"fmt"
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// mdLink matches inline markdown links/images: [text](target). Angle
// brackets around the target and trailing titles are handled below.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string
	problems = append(problems, checkMarkdownLinks(root)...)
	problems = append(problems, checkGoDocs(root)...)
	problems = append(problems, checkDocIdentifiers(root)...)
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Printf("docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}

// skipDir reports directories that hold no checked content.
func skipDir(name string) bool {
	switch name {
	case ".git", "testdata", "results", "node_modules":
		return true
	}
	return strings.HasPrefix(name, ".") && name != "."
}

// checkMarkdownLinks resolves every relative link target in every
// tracked markdown file against the filesystem.
func checkMarkdownLinks(root string) []string {
	var problems []string
	filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() {
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", path, err))
			return nil
		}
		for lineNo, line := range strings.Split(string(data), "\n") {
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := strings.Trim(m[1], "<>")
				if bad := badRelativeLink(filepath.Dir(path), target); bad != "" {
					problems = append(problems,
						fmt.Sprintf("%s:%d: broken link %q (%s)", path, lineNo+1, target, bad))
				}
			}
		}
		return nil
	})
	return problems
}

// badRelativeLink returns a non-empty reason when target is a relative
// link that does not resolve from dir. External schemes, pure
// fragments, and absolute URLs are out of scope.
func badRelativeLink(dir, target string) string {
	if target == "" || strings.Contains(target, "://") ||
		strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
		return ""
	}
	target, _, _ = strings.Cut(target, "#") // fragment resolution is out of scope
	if target == "" {
		return ""
	}
	if _, err := os.Stat(filepath.Join(dir, target)); err != nil {
		return "no such file"
	}
	return ""
}

// checkGoDocs parses every package under root and enforces the two Go
// documentation invariants: package docs everywhere, exported-identifier
// docs in the public (root) package.
func checkGoDocs(root string) []string {
	var problems []string
	filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return nil
		}
		if path != root && skipDir(d.Name()) {
			return filepath.SkipDir
		}
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, path, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", path, err))
			return nil
		}
		for name, pkg := range pkgs {
			if name == "main" && path != root {
				// Commands document themselves through the main package
				// comment; still require that comment below.
			}
			dp := doc.New(pkg, path, 0)
			if strings.TrimSpace(dp.Doc) == "" {
				problems = append(problems, fmt.Sprintf("%s: package %s has no package documentation", path, name))
			}
			// Exported-identifier docs are enforced for the public API
			// surface only: the root package is what users import.
			if path == root && name != "main" {
				problems = append(problems, undocumentedExported(dp, path)...)
			}
		}
		return nil
	})
	return problems
}

// docIdentFiles are the markdown files whose code spans name public
// API identifiers and therefore rot silently when the API moves.
var docIdentFiles = []string{"README.md", "DESIGN.md", "THEORY.md", "EXPERIMENTS.md"}

// qualifiedIdent matches pkg.Ident and pkg.Type.Member inside a code
// span. The qualifier must be a lower-case word so file names
// (`core.go`) and prose abbreviations never match; the identifier must
// be exported, since that is all the docs may legitimately name.
var qualifiedIdent = regexp.MustCompile(`\b([a-z][a-z0-9]*)\.([A-Z][A-Za-z0-9_]*)(?:\.([A-Za-z][A-Za-z0-9_]*))?`)

// inlineSpan extracts `code` spans from a markdown line.
var inlineSpan = regexp.MustCompile("`([^`]+)`")

// docIdent records one exported declaration of a package: whether it
// is a type, and — when the full member set is statically knowable
// (no alias, no embedding) — its exported methods and fields.
type docIdent struct {
	isType   bool
	complete bool
	members  map[string]bool
}

// checkDocIdentifiers verifies that every qualified identifier named in
// the tracked markdown files' code spans exists in the named package.
// Inline spans and fenced `go` blocks are checked; other fenced blocks
// (shell transcripts, rendered tables) are not code and are skipped.
// Qualifiers that are not package names in this repository are ignored,
// so local variables (`p.Offer`) and standard-library mentions never
// produce false positives.
func checkDocIdentifiers(root string) []string {
	syms := collectDocSymbols(root)
	var problems []string
	for _, name := range docIdentFiles {
		path := filepath.Join(root, name)
		data, err := os.ReadFile(path)
		if err != nil {
			continue // the file set is aspirational; absent files are fine
		}
		inFence, goFence := false, false
		for lineNo, line := range strings.Split(string(data), "\n") {
			trimmed := strings.TrimSpace(line)
			if strings.HasPrefix(trimmed, "```") {
				goFence = !inFence && strings.TrimPrefix(trimmed, "```") == "go"
				inFence = !inFence
				continue
			}
			var spans []string
			switch {
			case inFence && goFence:
				spans = []string{line}
			case !inFence:
				for _, m := range inlineSpan.FindAllStringSubmatch(line, -1) {
					spans = append(spans, m[1])
				}
			}
			for _, span := range spans {
				problems = append(problems, checkSpan(syms, path, lineNo+1, span)...)
			}
		}
	}
	return problems
}

// checkSpan flags qualified identifiers in one code span that name a
// known package but an unknown exported declaration, or a known type
// but an unknown member when the member set is statically complete.
func checkSpan(syms map[string]map[string]*docIdent, path string, lineNo int, span string) []string {
	var problems []string
	for _, m := range qualifiedIdent.FindAllStringSubmatch(span, -1) {
		pkg, ident, member := m[1], m[2], m[3]
		tbl, ok := syms[pkg]
		if !ok {
			continue
		}
		e, ok := tbl[ident]
		if !ok {
			problems = append(problems,
				fmt.Sprintf("%s:%d: code span names %s.%s, which does not exist", path, lineNo, pkg, ident))
			continue
		}
		if member != "" && ast.IsExported(member) && e.isType && e.complete && !e.members[member] {
			problems = append(problems,
				fmt.Sprintf("%s:%d: code span names %s.%s.%s, but %s.%s has no such member", path, lineNo, pkg, ident, member, pkg, ident))
		}
	}
	return problems
}

// collectDocSymbols parses every non-main package under root and builds
// the package-name → exported-declaration table that checkSpan resolves
// against. Aliased types and types with embedded fields keep
// complete=false so member lookups on them are skipped rather than
// guessed.
func collectDocSymbols(root string) map[string]map[string]*docIdent {
	syms := map[string]map[string]*docIdent{}
	ensure := func(tbl map[string]*docIdent, name string) *docIdent {
		e, ok := tbl[name]
		if !ok {
			e = &docIdent{members: map[string]bool{}}
			tbl[name] = e
		}
		return e
	}
	filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return nil
		}
		if path != root && skipDir(d.Name()) {
			return filepath.SkipDir
		}
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, path, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, 0)
		if err != nil {
			return nil // checkGoDocs already reports parse failures
		}
		for name, pkg := range pkgs {
			if name == "main" || strings.HasSuffix(name, "_test") {
				continue
			}
			tbl := syms[name]
			if tbl == nil {
				tbl = map[string]*docIdent{}
				syms[name] = tbl
			}
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					collectDecl(tbl, ensure, decl)
				}
			}
		}
		return nil
	})
	return syms
}

// collectDecl adds one top-level declaration to the package table.
func collectDecl(tbl map[string]*docIdent, ensure func(map[string]*docIdent, string) *docIdent, decl ast.Decl) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Recv != nil {
			if len(d.Recv.List) == 1 && ast.IsExported(d.Name.Name) {
				if tn := recvTypeName(d.Recv.List[0].Type); tn != "" && ast.IsExported(tn) {
					e := ensure(tbl, tn)
					e.isType = true
					e.members[d.Name.Name] = true
				}
			}
		} else if ast.IsExported(d.Name.Name) {
			ensure(tbl, d.Name.Name)
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !ast.IsExported(s.Name.Name) {
					continue
				}
				e := ensure(tbl, s.Name.Name)
				e.isType = true
				e.complete = !s.Assign.IsValid()
				switch t := s.Type.(type) {
				case *ast.StructType:
					collectFields(e, t.Fields)
				case *ast.InterfaceType:
					collectFields(e, t.Methods)
				}
			case *ast.ValueSpec:
				for _, n := range s.Names {
					if ast.IsExported(n.Name) {
						ensure(tbl, n.Name)
					}
				}
			}
		}
	}
}

// collectFields records a struct's fields or an interface's methods on
// e; an embedded entry (no names) makes the member set incomplete, as
// promoted members live in another declaration.
func collectFields(e *docIdent, fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, f := range fl.List {
		if len(f.Names) == 0 {
			e.complete = false
			continue
		}
		for _, n := range f.Names {
			if ast.IsExported(n.Name) {
				e.members[n.Name] = true
			}
		}
	}
}

// recvTypeName resolves a method receiver expression to its type name,
// unwrapping pointers and generic instantiations.
func recvTypeName(expr ast.Expr) string {
	for {
		switch t := expr.(type) {
		case *ast.StarExpr:
			expr = t.X
		case *ast.IndexExpr:
			expr = t.X
		case *ast.IndexListExpr:
			expr = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// undocumentedExported lists exported identifiers of a parsed package
// that carry no doc comment.
func undocumentedExported(dp *doc.Package, path string) []string {
	var problems []string
	flag := func(kind, name, docText string) {
		if strings.TrimSpace(docText) == "" {
			problems = append(problems, fmt.Sprintf("%s: exported %s %s is undocumented", path, kind, name))
		}
	}
	for _, f := range dp.Funcs {
		flag("func", f.Name, f.Doc)
	}
	for _, t := range dp.Types {
		if ast.IsExported(t.Name) {
			flag("type", t.Name, t.Doc)
		}
		for _, f := range t.Funcs {
			flag("func", f.Name, f.Doc)
		}
		for _, m := range t.Methods {
			flag("method", t.Name+"."+m.Name, m.Doc)
		}
	}
	for _, grp := range [][]*doc.Value{dp.Consts, dp.Vars} {
		for _, v := range grp {
			if strings.TrimSpace(v.Doc) != "" {
				continue
			}
			for _, n := range v.Names {
				if ast.IsExported(n) {
					problems = append(problems, fmt.Sprintf("%s: exported value %s is undocumented", path, n))
				}
			}
		}
	}
	return problems
}
