// Docscheck enforces the repository's documentation invariants:
//
//  1. every Go package carries package-level documentation;
//  2. every exported identifier of the public API (the root feasregion
//     package) has a doc comment;
//  3. every relative link in the markdown files resolves to a file or
//     directory that exists.
//
// It prints one line per violation and exits non-zero if any were
// found. Run via `make docs-check`; CI runs it on every push.
package main

import (
	"fmt"
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// mdLink matches inline markdown links/images: [text](target). Angle
// brackets around the target and trailing titles are handled below.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string
	problems = append(problems, checkMarkdownLinks(root)...)
	problems = append(problems, checkGoDocs(root)...)
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Printf("docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}

// skipDir reports directories that hold no checked content.
func skipDir(name string) bool {
	switch name {
	case ".git", "testdata", "results", "node_modules":
		return true
	}
	return strings.HasPrefix(name, ".") && name != "."
}

// checkMarkdownLinks resolves every relative link target in every
// tracked markdown file against the filesystem.
func checkMarkdownLinks(root string) []string {
	var problems []string
	filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() {
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", path, err))
			return nil
		}
		for lineNo, line := range strings.Split(string(data), "\n") {
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := strings.Trim(m[1], "<>")
				if bad := badRelativeLink(filepath.Dir(path), target); bad != "" {
					problems = append(problems,
						fmt.Sprintf("%s:%d: broken link %q (%s)", path, lineNo+1, target, bad))
				}
			}
		}
		return nil
	})
	return problems
}

// badRelativeLink returns a non-empty reason when target is a relative
// link that does not resolve from dir. External schemes, pure
// fragments, and absolute URLs are out of scope.
func badRelativeLink(dir, target string) string {
	if target == "" || strings.Contains(target, "://") ||
		strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
		return ""
	}
	target, _, _ = strings.Cut(target, "#") // fragment resolution is out of scope
	if target == "" {
		return ""
	}
	if _, err := os.Stat(filepath.Join(dir, target)); err != nil {
		return "no such file"
	}
	return ""
}

// checkGoDocs parses every package under root and enforces the two Go
// documentation invariants: package docs everywhere, exported-identifier
// docs in the public (root) package.
func checkGoDocs(root string) []string {
	var problems []string
	filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return nil
		}
		if path != root && skipDir(d.Name()) {
			return filepath.SkipDir
		}
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, path, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", path, err))
			return nil
		}
		for name, pkg := range pkgs {
			if name == "main" && path != root {
				// Commands document themselves through the main package
				// comment; still require that comment below.
			}
			dp := doc.New(pkg, path, 0)
			if strings.TrimSpace(dp.Doc) == "" {
				problems = append(problems, fmt.Sprintf("%s: package %s has no package documentation", path, name))
			}
			// Exported-identifier docs are enforced for the public API
			// surface only: the root package is what users import.
			if path == root && name != "main" {
				problems = append(problems, undocumentedExported(dp, path)...)
			}
		}
		return nil
	})
	return problems
}

// undocumentedExported lists exported identifiers of a parsed package
// that carry no doc comment.
func undocumentedExported(dp *doc.Package, path string) []string {
	var problems []string
	flag := func(kind, name, docText string) {
		if strings.TrimSpace(docText) == "" {
			problems = append(problems, fmt.Sprintf("%s: exported %s %s is undocumented", path, kind, name))
		}
	}
	for _, f := range dp.Funcs {
		flag("func", f.Name, f.Doc)
	}
	for _, t := range dp.Types {
		if ast.IsExported(t.Name) {
			flag("type", t.Name, t.Doc)
		}
		for _, f := range t.Funcs {
			flag("func", f.Name, f.Doc)
		}
		for _, m := range t.Methods {
			flag("method", t.Name+"."+m.Name, m.Doc)
		}
	}
	for _, grp := range [][]*doc.Value{dp.Consts, dp.Vars} {
		for _, v := range grp {
			if strings.TrimSpace(v.Doc) != "" {
				continue
			}
			for _, n := range v.Names {
				if ast.IsExported(n) {
					problems = append(problems, fmt.Sprintf("%s: exported value %s is undocumented", path, n))
				}
			}
		}
	}
	return problems
}
