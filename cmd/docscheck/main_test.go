package main

import (
	"os"
	"path/filepath"
	"testing"
)

// writeTree lays out a miniature repo under a temp dir: one documented
// package `core` with a struct type, a method, a const, and a plain
// function — enough surface for every branch of the identifier check.
func writeTree(t *testing.T, readme string) string {
	t.Helper()
	root := t.TempDir()
	pkgDir := filepath.Join(root, "internal", "core")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := `// Package core is the fixture package.
package core

// Bound is an exported constant.
const Bound = 0.5

// Region is an exported struct.
type Region struct {
	// Alpha is an exported field.
	Alpha float64
}

// Check is an exported method.
func (r Region) Check() bool { return r.Alpha > 0 }

// New is an exported constructor.
func New() Region { return Region{} }
`
	if err := os.WriteFile(filepath.Join(pkgDir, "core.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "README.md"), []byte(readme), 0o644); err != nil {
		t.Fatal(err)
	}
	return root
}

func TestDocIdentifiersAccepted(t *testing.T) {
	readme := "Use `core.New` to build a `core.Region`; test it with\n" +
		"`core.Region.Check` against `core.Bound` and read\n" +
		"`core.Region.Alpha` directly.\n\n" +
		"```go\nr := core.New()\nok := r.Check()\n```\n\n" +
		"Prose like e.g. this, file names like `core.go`, and unknown\n" +
		"qualifiers like `time.Duration` or `p.Offer` are all ignored.\n"
	if problems := checkDocIdentifiers(writeTree(t, readme)); len(problems) != 0 {
		t.Fatalf("expected no problems, got %v", problems)
	}
}

func TestDocIdentifiersRejected(t *testing.T) {
	cases := []struct {
		name   string
		readme string
	}{
		{"unknown-ident", "Call `core.Missing` to do nothing.\n"},
		{"unknown-member", "The flag `core.Region.Gone` is long dead.\n"},
		{"go-fence", "```go\nv := core.Vanished\n```\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if problems := checkDocIdentifiers(writeTree(t, tc.readme)); len(problems) != 1 {
				t.Fatalf("expected exactly one problem, got %v", problems)
			}
		})
	}
}

// Non-go fenced blocks hold rendered tables and shell transcripts —
// anything inside them must not be treated as an API reference.
func TestDocIdentifiersSkipsNonGoFences(t *testing.T) {
	readme := "```text\ncore.Missing core.Region.Gone\n```\n\n" +
		"```\ncore.AlsoMissing\n```\n"
	if problems := checkDocIdentifiers(writeTree(t, readme)); len(problems) != 0 {
		t.Fatalf("expected no problems, got %v", problems)
	}
}
