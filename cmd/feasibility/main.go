// Command feasibility is an offline admission/certification tool: it
// reads a task-set description (JSON) and reports each stage's synthetic
// utilization, the feasible-region value Σ f(U_j), and whether the set
// is certified schedulable — the §5 pre-certification workflow.
//
// Usage:
//
//	feasibility -taskset set.json
//	feasibility -rta set.json        # holistic response-time analysis (periodic sets)
//	feasibility -surface 16          # sample the 2-stage bounding surface
//	feasibility -bounds 8            # balanced per-stage bounds vs N
//
// Task-set JSON schema:
//
//	{
//	  "stages": 3,
//	  "alpha": 1.0,                  // optional, default 1 (DM)
//	  "betas": [0, 0, 0],            // optional per-stage blocking terms
//	  "reserved": [0.1, 0, 0],       // optional reserved utilization
//	  "tasks": [
//	    {"name": "weapon-detection", "deadline": 0.5, "demands": [0.1, 0.065, 0]},
//	    ...
//	  ]
//	}
//
// Each task is assumed concurrently current (worst case): its
// contribution C_j/D is added to every stage.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"feasregion/internal/analysis"
	"feasregion/internal/core"
	"feasregion/internal/experiments"
	"feasregion/internal/stats"
	"feasregion/internal/task"
)

// TaskSpec is one chain task in the input file.
type TaskSpec struct {
	Name     string    `json:"name"`
	Deadline float64   `json:"deadline"`
	Demands  []float64 `json:"demands"`
}

// NodeSpec is one DAG node: a demand on a resource.
type NodeSpec struct {
	Resource int     `json:"resource"`
	Demand   float64 `json:"demand"`
}

// GraphTaskSpec is one DAG task (paper §3.3): nodes with resource
// assignments and precedence edges [from, to].
type GraphTaskSpec struct {
	Name     string     `json:"name"`
	Deadline float64    `json:"deadline"`
	Nodes    []NodeSpec `json:"nodes"`
	Edges    [][2]int   `json:"edges"`
}

// PeriodicSpec is one sporadic/periodic task for -rta.
type PeriodicSpec struct {
	Name     string    `json:"name"`
	Period   float64   `json:"period"`
	Deadline float64   `json:"deadline"`
	Jitter   float64   `json:"jitter"`
	Demands  []float64 `json:"demands"`
	// Priority defaults to the deadline (deadline-monotonic) when 0.
	Priority float64 `json:"priority"`
}

// SetSpec is the input file schema. Stages counts the pipeline stages
// (chain tasks) or independent resources (graph tasks) — they share one
// index space.
type SetSpec struct {
	Stages        int             `json:"stages"`
	Alpha         float64         `json:"alpha"`
	Betas         []float64       `json:"betas"`
	Reserved      []float64       `json:"reserved"`
	Tasks         []TaskSpec      `json:"tasks"`
	GraphTasks    []GraphTaskSpec `json:"graphTasks"`
	PeriodicTasks []PeriodicSpec  `json:"periodicTasks"`
}

func main() {
	tasksetPath := flag.String("taskset", "", "JSON task-set file to certify")
	rtaPath := flag.String("rta", "", "JSON periodic task-set file for holistic response-time analysis")
	surface := flag.Int("surface", 0, "sample N points of the 2-stage bounding surface")
	bounds := flag.Int("bounds", 0, "print balanced per-stage bounds for 1..N stages")
	flag.Parse()

	switch {
	case *tasksetPath != "":
		if err := certify(*tasksetPath); err != nil {
			fmt.Fprintf(os.Stderr, "feasibility: %v\n", err)
			os.Exit(1)
		}
	case *rtaPath != "":
		if err := runRTA(*rtaPath); err != nil {
			fmt.Fprintf(os.Stderr, "feasibility: %v\n", err)
			os.Exit(1)
		}
	case *surface > 0:
		fmt.Println(experiments.Surface(core.NewRegion(2), *surface).Render())
	case *bounds > 0:
		fmt.Println(experiments.BalancedBounds(*bounds).Render())
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func certify(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var spec SetSpec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	if spec.Stages <= 0 {
		return fmt.Errorf("%s: stages must be positive", path)
	}
	if spec.Alpha == 0 {
		spec.Alpha = 1
	}

	region := core.NewRegion(spec.Stages).WithAlpha(spec.Alpha)
	if spec.Betas != nil {
		region = region.WithBetas(spec.Betas)
	}

	utils := make([]float64, spec.Stages)
	copy(utils, spec.Reserved)
	for i, t := range spec.Tasks {
		if t.Deadline <= 0 {
			return fmt.Errorf("task %d (%s): deadline must be positive", i, t.Name)
		}
		if len(t.Demands) != spec.Stages {
			return fmt.Errorf("task %d (%s): %d demands for %d stages", i, t.Name, len(t.Demands), spec.Stages)
		}
		for j, c := range t.Demands {
			utils[j] += c / t.Deadline
		}
	}

	// DAG tasks: accumulate their per-resource contributions, then check
	// each graph's own Theorem 2 condition below.
	graphs := make([]*task.Graph, len(spec.GraphTasks))
	for i, gt := range spec.GraphTasks {
		if gt.Deadline <= 0 {
			return fmt.Errorf("graph task %d (%s): deadline must be positive", i, gt.Name)
		}
		g := task.NewGraph()
		for _, n := range gt.Nodes {
			if n.Resource < 0 || n.Resource >= spec.Stages {
				return fmt.Errorf("graph task %d (%s): resource %d out of range", i, gt.Name, n.Resource)
			}
			g.AddNode(n.Resource, task.NewSubtask(n.Demand))
			utils[n.Resource] += n.Demand / gt.Deadline
		}
		for _, e := range gt.Edges {
			if e[0] < 0 || e[0] >= len(gt.Nodes) || e[1] < 0 || e[1] >= len(gt.Nodes) {
				return fmt.Errorf("graph task %d (%s): edge %v out of range", i, gt.Name, e)
			}
			g.AddEdge(e[0], e[1])
		}
		if err := g.Validate(); err != nil {
			return fmt.Errorf("graph task %d (%s): %w", i, gt.Name, err)
		}
		graphs[i] = g
	}

	tbl := &stats.Table{
		Title:  fmt.Sprintf("Feasibility certification (%d stages, α=%.3g, bound=%.4g)", spec.Stages, spec.Alpha, region.Bound()),
		Header: []string{"stage", "synthetic U_j", "f(U_j)"},
	}
	for j, u := range utils {
		tbl.AddRow(fmt.Sprintf("%d", j+1), fmt.Sprintf("%.4f", u), fmt.Sprintf("%.4f", core.StageDelayFactor(u)))
	}
	value := region.Value(utils)
	tbl.AddRow("total", "", fmt.Sprintf("%.4f", value))
	fmt.Println(tbl.Render())

	certified := true
	if len(spec.Tasks) > 0 || len(spec.GraphTasks) == 0 {
		// Chain tasks traverse every stage: the pipeline condition applies.
		if region.Contains(utils) {
			fmt.Printf("pipeline condition: %.4f ≤ %.4f — OK\n", value, region.Bound())
		} else {
			fmt.Printf("pipeline condition: %.4f > %.4f — VIOLATED\n", value, region.Bound())
			certified = false
		}
	}
	for i, g := range graphs {
		v := core.GraphValue(g, utils, spec.Betas)
		if v <= spec.Alpha {
			fmt.Printf("graph task %q condition (Thm 2): %.4f ≤ %.4f — OK\n", spec.GraphTasks[i].Name, v, spec.Alpha)
		} else {
			fmt.Printf("graph task %q condition (Thm 2): %.4f > %.4f — VIOLATED\n", spec.GraphTasks[i].Name, v, spec.Alpha)
			certified = false
		}
	}

	if certified {
		fmt.Println("CERTIFIED: all end-to-end deadlines guaranteed.")
		return nil
	}
	fmt.Println("NOT CERTIFIED.")
	os.Exit(3)
	return nil
}

// runRTA performs holistic response-time analysis over the file's
// periodicTasks and contrasts the verdict with the feasible region's
// periodic-side test.
func runRTA(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var spec SetSpec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	if spec.Stages <= 0 {
		return fmt.Errorf("%s: stages must be positive", path)
	}
	if len(spec.PeriodicTasks) == 0 {
		return fmt.Errorf("%s: no periodicTasks", path)
	}
	set := make([]analysis.SporadicTask, len(spec.PeriodicTasks))
	for i, pt := range spec.PeriodicTasks {
		prio := pt.Priority
		if prio == 0 {
			prio = pt.Deadline
		}
		set[i] = analysis.SporadicTask{
			Name:     pt.Name,
			Period:   pt.Period,
			Deadline: pt.Deadline,
			Jitter:   pt.Jitter,
			Demands:  pt.Demands,
			Priority: prio,
		}
	}
	res, err := analysis.HolisticRTA(spec.Stages, set)
	if err != nil {
		return err
	}
	tbl := &stats.Table{
		Title:  fmt.Sprintf("Holistic response-time analysis (%d stages)", spec.Stages),
		Header: []string{"task", "period", "deadline", "worst-case response", "ok"},
	}
	for i, st := range set {
		ok := "yes"
		if res.Response[i] > st.Deadline || res.Response[i] > st.Period {
			ok = "NO"
		}
		tbl.AddRow(st.Name, fmt.Sprintf("%g", st.Period), fmt.Sprintf("%g", st.Deadline),
			fmt.Sprintf("%.4g", res.Response[i]), ok)
	}
	fmt.Println(tbl.Render())

	regionOK, utils, err := analysis.RegionAcceptsSporadic(core.NewRegion(spec.Stages), set)
	if err != nil {
		return err
	}
	fmt.Printf("feasible-region periodic test: utilizations %.3v -> accepted=%v\n", utils, regionOK)
	if res.Schedulable {
		fmt.Println("RTA verdict: SCHEDULABLE.")
		return nil
	}
	fmt.Println("RTA verdict: NOT schedulable.")
	os.Exit(3)
	return nil
}
