// Command experiments regenerates every table and figure of the paper's
// evaluation: Figures 4-7 (§4), the Table 1 TSCE certification and
// track-capacity simulation (§5), the bounding-surface samples, and the
// ablations (idle reset, urgency inversion α, blocking β, baseline
// admission policies).
//
// Usage:
//
//	experiments [-run all|fig4|fig5|fig6|fig7|table1|surface|ablations|baselines|extensions|soundness|chaos|health|adapt|degrade|cluster|priority] [-quick] [-csv dir]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"feasregion/internal/core"
	"feasregion/internal/experiments"
	"feasregion/internal/report"
	"feasregion/internal/stats"
)

func main() {
	run := flag.String("run", "all", "which experiment to run: all, fig4, fig5, fig6, fig7, table1, surface, ablations, baselines, extensions, soundness, chaos, health, adapt, degrade, cluster, priority, replay")
	quick := flag.Bool("quick", false, "reduced scale (shorter horizons, one replication)")
	plot := flag.Bool("plot", false, "render Figures 4-7 as ASCII charts in addition to tables")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	mdPath := flag.String("md", "", "also write all tables as one markdown document")
	htmlPath := flag.String("html", "", "also write a self-contained HTML report with SVG charts")
	traceFile := flag.String("trace", "", "for -run replay: replay this binary trace instead of generating one")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	// Registered before the profile defers so they flush first (LIFO).
	exitCode := 0
	defer func() {
		if exitCode != 0 {
			os.Exit(exitCode)
		}
	}()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "creating CPU profile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "starting CPU profile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "creating heap profile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "writing heap profile: %v\n", err)
			}
		}()
	}

	scale := experiments.Full
	if *quick {
		scale = experiments.Quick
	}

	want := func(name string) bool { return *run == "all" || *run == name }
	var tables []*stats.Table

	var charts []string
	var figures []report.Figure
	if want("fig4") {
		cfg := experiments.DefaultFig4()
		cfg.Scale = scale
		res := experiments.Fig4(cfg)
		tables = append(tables, res.Table())
		figures = append(figures, res.Figure())
		if *plot {
			charts = append(charts, res.Chart())
		}
	}
	if want("fig5") {
		cfg := experiments.DefaultFig5()
		cfg.Scale = scale
		res := experiments.Fig5(cfg)
		tables = append(tables, res.Table())
		figures = append(figures, res.Figure())
		if *plot {
			charts = append(charts, res.Chart())
		}
	}
	if want("fig6") {
		cfg := experiments.DefaultFig6()
		cfg.Scale = scale
		res := experiments.Fig6(cfg)
		tables = append(tables, res.Table())
		figures = append(figures, res.Figure())
		if *plot {
			charts = append(charts, res.Chart())
		}
	}
	if want("fig7") {
		cfg := experiments.DefaultFig7()
		cfg.Scale = scale
		res := experiments.Fig7(cfg)
		tables = append(tables, res.Table())
		figures = append(figures, res.Figure())
		if *plot {
			charts = append(charts, res.Chart())
		}
	}
	if want("table1") {
		cert, _ := experiments.Table1Certification()
		tables = append(tables, cert)
		cfg := experiments.DefaultTable1()
		if *quick {
			cfg.Tracks = []int{200, 400, 550, 600}
			cfg.Horizon, cfg.Warmup = 10, 2
		}
		tables = append(tables, experiments.Table1TrackCapacity(cfg).Table())
	}
	if want("surface") {
		tables = append(tables, experiments.Surface(core.NewRegion(2), 12))
		tables = append(tables, experiments.BalancedBounds(8))
	}
	if want("ablations") {
		ir := experiments.DefaultAblationIdleReset()
		ir.Scale = scale
		tables = append(tables, experiments.AblationIdleReset(ir))
		aa := experiments.DefaultAblationAlpha()
		aa.Scale = scale
		tables = append(tables, experiments.AblationAlphaPolicies(aa))
		ab := experiments.DefaultAblationBlocking()
		ab.Scale = scale
		tables = append(tables, experiments.AblationBlocking(ab))
	}
	if want("baselines") {
		bc := experiments.DefaultBaselineCompare()
		bc.Scale = scale
		tables = append(tables, experiments.BaselineCompare(bc))
	}
	if want("extensions") {
		jp := experiments.DefaultJitteredPeriodic()
		if *quick {
			jp.Horizon, jp.Warmup = 1500, 200
		}
		tables = append(tables, experiments.JitteredPeriodic(jp))
		ov := experiments.DefaultOverrun()
		ov.Scale = scale
		tables = append(tables, experiments.Overrun(ov))
		ht := experiments.DefaultHeavyTail()
		ht.Scale = scale
		tables = append(tables, experiments.HeavyTailApproximate(ht))
		pc := experiments.DefaultPolicyCompare()
		pc.Scale = scale
		tables = append(tables, experiments.PolicyCompare(pc))
		bu := experiments.DefaultBurstiness()
		bu.Scale = scale
		tables = append(tables, experiments.Burstiness(bu))
		pcmp := experiments.DefaultPeriodicComparison()
		if *quick {
			pcmp.Trials = 50
		}
		tables = append(tables, experiments.PeriodicComparison(pcmp))
		ti := experiments.DefaultTightness()
		ti.Scale = scale
		tables = append(tables, experiments.BoundTightness(ti))
		df := experiments.DefaultDataFlow()
		if *quick {
			df.Horizon, df.Warmup = 1200, 150
		}
		tables = append(tables, experiments.DataFlow(df))
		oh := experiments.DefaultOverhead()
		oh.Scale = scale
		tables = append(tables, experiments.PreemptionOverheadSensitivity(oh))
		st := experiments.DefaultStorm()
		if *quick {
			st.Horizon, st.Warmup, st.StormStart, st.StormEnd = 30, 4, 10, 20
		}
		tables = append(tables, experiments.SheddingStorm(st))
		ms := experiments.DefaultMultiServer()
		ms.Scale = scale
		tables = append(tables, experiments.MultiServerScaling(ms))
		tables = append(tables, experiments.AdversarialTightness(experiments.DefaultAdversarial()))
	}

	if want("chaos") {
		cc := experiments.DefaultChaos()
		if *quick {
			cc.Seeds, cc.Horizon, cc.Warmup = 2, 300, 40
		}
		tables = append(tables, experiments.Chaos(cc))
	}

	if want("health") {
		hc := experiments.DefaultHealth()
		if *quick {
			hc.Seeds, hc.Horizon, hc.Warmup = 2, 500, 50
			hc.SlowStart, hc.SlowLen = 120, 250
		}
		tables = append(tables, experiments.Health(hc).Table())
	}

	if want("adapt") {
		ac := experiments.DefaultAdapt()
		if *quick {
			ac.Seeds, ac.Horizon, ac.Warmup = 2, 600, 60
			ac.SlowStart, ac.SlowLen = 150, 150
			// The β/α estimators read cumulative histogram tails, which a
			// short horizon cannot dilute after the fault window; quick
			// mode demonstrates the demand estimator alone.
			ac.Adapt.Beta.Enabled = false
			ac.Adapt.Alpha.Enabled = false
		}
		tables = append(tables, experiments.Adapt(ac).Table())
	}

	if want("degrade") {
		dc := experiments.DefaultDegrade()
		if *quick {
			dc.Seeds, dc.Horizon, dc.Warmup = 1, 300, 30
			dc.Loads = []float64{0.75, 1.0, 1.5, 2.0}
		}
		tables = append(tables, experiments.Degrade(dc).Table())
	}

	if want("cluster") {
		cl := experiments.DefaultCluster()
		if *quick {
			cl.Seeds, cl.Horizon, cl.Warmup = 1, 300, 40
			cl.SlowStart, cl.SlowLen = 60, 220
			cl.ScaleHorizon, cl.ScaleWarmup, cl.StepAt = 600, 30, 150
		}
		tables = append(tables, experiments.Cluster(cl).Tables()...)
	}

	if want("priority") {
		pc := experiments.DefaultPriority()
		pc.Scale = scale
		if *quick {
			pc.Arrivals = 1200
		}
		out, err := experiments.PriorityAdmission(pc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "priority: %v\n", err)
			os.Exit(1)
		}
		tables = append(tables, experiments.PriorityAdmissionTable(out))
		tables = append(tables, experiments.PriorityTightness())
	}

	// The replay throughput run is explicit-only: at full scale it
	// generates a ten-million-record trace, which has no place in "all".
	if *run == "replay" {
		rc := experiments.DefaultReplay()
		rc.TraceFile = *traceFile
		if *quick {
			rc.Arrivals = 200_000
		}
		res, err := experiments.Replay(rc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "replay: %v\n", err)
			os.Exit(1)
		}
		tables = append(tables, res.Table())
		if !res.Deterministic {
			exitCode = 1
		}
	}

	if want("soundness") {
		sc := experiments.DefaultSoundness()
		if *quick {
			sc.Seeds, sc.Horizon = 2, 600
		}
		tables = append(tables, experiments.Soundness(sc))
	}

	if len(tables) == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
		flag.Usage()
		os.Exit(2)
	}

	for _, c := range charts {
		fmt.Println(c)
	}
	var md strings.Builder
	md.WriteString("# feasregion experiment results\n\n")
	for _, t := range tables {
		fmt.Println(t.Render())
		if *csvDir != "" {
			if err := writeCSV(*csvDir, t); err != nil {
				fmt.Fprintf(os.Stderr, "writing CSV: %v\n", err)
				os.Exit(1)
			}
		}
		md.WriteString(t.Markdown())
		md.WriteString("\n")
	}
	if *mdPath != "" {
		if err := os.WriteFile(*mdPath, []byte(md.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing markdown: %v\n", err)
			os.Exit(1)
		}
	}
	if *htmlPath != "" {
		doc := report.HTML("feasregion experiment results", figures, tables)
		if err := os.WriteFile(*htmlPath, []byte(doc), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing HTML report: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeCSV stores the table under a slug of its title.
func writeCSV(dir string, t *stats.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	slug := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		case r == ' ', r == ':', r == '/':
			return '-'
		default:
			return -1
		}
	}, t.Title)
	if len(slug) > 60 {
		slug = slug[:60]
	}
	return os.WriteFile(filepath.Join(dir, slug+".csv"), []byte(t.CSV()), 0o644)
}
