package feasregion_test

import (
	"testing"
	"time"

	"feasregion/internal/core"
	"feasregion/internal/des"
	"feasregion/internal/metrics"
	"feasregion/internal/online"
	"feasregion/internal/task"
)

// Metrics-overhead benchmarks: the same admit hot path with instruments
// disabled (no registry wired — every instrument is a nil receiver) and
// enabled. The PR's acceptance criterion is <5% overhead in the
// disabled case versus the pre-metrics baseline; since disabled
// instruments are nil-receiver no-ops, the Off variants ARE that
// baseline, and comparing Off vs On bounds what enabling costs.
// `make bench-json` emits these as BENCH_metrics.json.

// coreAdmitLoop drives one TryAdmit+Evict cycle per iteration — the
// full simulation admit path including ledger bookkeeping and, when a
// registry is wired, counter increments and region-gauge updates.
func coreAdmitLoop(b *testing.B, reg *metrics.Registry) {
	sim := des.New()
	c := core.NewController(sim, core.NewRegion(3), nil)
	if reg != nil {
		c.SetMetrics(reg)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := task.ID(i)
		if !c.TryAdmit(task.Chain(id, sim.Now(), 1e9, 0.001, 0.001, 0.001)) {
			b.Fatal("admission unexpectedly rejected")
		}
		c.Evict(id)
	}
}

func BenchmarkCoreAdmitMetricsOff(b *testing.B) {
	coreAdmitLoop(b, nil)
}

func BenchmarkCoreAdmitMetricsOn(b *testing.B) {
	coreAdmitLoop(b, metrics.NewRegistry())
}

// onlineAdmitLoop is the wall-clock analogue: TryAdmit+Release on the
// online controller. Its exported series are read-on-scrape funcs, so
// RegisterMetrics should cost nothing on this path at all — the On
// variant guards against someone later moving work into the hot path.
func onlineAdmitLoop(b *testing.B, reg *metrics.Registry) {
	c := online.New(core.NewRegion(3), nil, nil)
	if reg != nil {
		c.RegisterMetrics(reg)
	}
	demands := []time.Duration{time.Microsecond, time.Microsecond, time.Microsecond}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint64(i + 1)
		if !c.TryAdmit(online.Request{ID: id, Deadline: 10 * time.Millisecond, Demands: demands}) {
			b.Fatal("admission unexpectedly rejected")
		}
		c.Release(id)
	}
}

func BenchmarkOnlineAdmitMetricsOff(b *testing.B) {
	onlineAdmitLoop(b, nil)
}

func BenchmarkOnlineAdmitMetricsOn(b *testing.B) {
	onlineAdmitLoop(b, metrics.NewRegistry())
}
