module feasregion

go 1.22
